//! Seeded random workload generators.
//!
//! Used by the property tests ("class inclusions hold on arbitrary TGD
//! sets") and by the recognition benchmarks. All generation is driven by an
//! explicit seed: equal configs produce equal workloads.

use chase_core::{Atom, Constraint, ConstraintSet, Egd, Instance, Sym, Term, Tgd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a random TGD set.
#[derive(Debug, Clone)]
pub struct RandomTgdConfig {
    /// Number of constraints to generate.
    pub constraints: usize,
    /// Predicate pool size (names `P0 … P{n−1}`).
    pub predicates: usize,
    /// Maximum predicate arity (arities are assigned per predicate,
    /// uniformly in `1..=max_arity`).
    pub max_arity: usize,
    /// Body atoms per TGD, inclusive range.
    pub body_atoms: (usize, usize),
    /// Head atoms per TGD, inclusive range.
    pub head_atoms: (usize, usize),
    /// Probability that a head slot introduces an existential variable
    /// rather than reusing a body variable.
    pub existential_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomTgdConfig {
    fn default() -> RandomTgdConfig {
        RandomTgdConfig {
            constraints: 4,
            predicates: 3,
            max_arity: 3,
            body_atoms: (1, 2),
            head_atoms: (1, 2),
            existential_prob: 0.3,
            seed: 0,
        }
    }
}

/// Generate a random TGD set according to `cfg`.
///
/// Every generated TGD is well-formed by construction: head variables are
/// drawn from body variables or declared fresh existentials.
pub fn random_tgds(cfg: &RandomTgdConfig) -> ConstraintSet {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let arities: Vec<usize> = (0..cfg.predicates)
        .map(|_| rng.gen_range(1..=cfg.max_arity))
        .collect();
    let mut out = Vec::with_capacity(cfg.constraints);
    for _ in 0..cfg.constraints {
        // Body: random atoms over a small variable pool.
        let n_body = rng.gen_range(cfg.body_atoms.0..=cfg.body_atoms.1);
        let var_pool = 1 + cfg.max_arity; // keep joins likely
        let mut body = Vec::with_capacity(n_body);
        for _ in 0..n_body {
            let p = rng.gen_range(0..cfg.predicates);
            let terms: Vec<Term> = (0..arities[p])
                .map(|_| Term::var(&format!("X{}", rng.gen_range(0..var_pool))))
                .collect();
            body.push(Atom::new(format!("P{p}").as_str(), terms));
        }
        // Collect body variables for head reuse.
        let mut body_vars = Vec::new();
        for a in &body {
            for v in a.vars() {
                if !body_vars.contains(&v) {
                    body_vars.push(v);
                }
            }
        }
        // Head: reuse body variables or mint existentials.
        let n_head = rng.gen_range(cfg.head_atoms.0..=cfg.head_atoms.1);
        let mut head = Vec::with_capacity(n_head);
        let mut next_exist = 0usize;
        for _ in 0..n_head {
            let p = rng.gen_range(0..cfg.predicates);
            let terms: Vec<Term> = (0..arities[p])
                .map(|_| {
                    if body_vars.is_empty() || rng.gen_bool(cfg.existential_prob) {
                        // Reuse one of a couple of existential names so
                        // repeated slots can share a fresh null.
                        let e = if next_exist > 0 && rng.gen_bool(0.5) {
                            rng.gen_range(0..=next_exist.min(2))
                        } else {
                            next_exist += 1;
                            next_exist - 1
                        };
                        Term::var(&format!("Y{e}"))
                    } else {
                        Term::Var(body_vars[rng.gen_range(0..body_vars.len())])
                    }
                })
                .collect();
            head.push(Atom::new(format!("P{p}").as_str(), terms));
        }
        let tgd = Tgd::new(body, head).expect("generated TGD is well-formed");
        out.push(Constraint::Tgd(tgd));
    }
    ConstraintSet::from_constraints(out).expect("consistent generated schema")
}

/// A random TGD set plus `egds` random key EGDs over the same schema: each
/// EGD makes one predicate functional from a key position to a value
/// position (`P(.., X, .., Y, ..), P(.., X, .., Z, ..) -> Y = Z`); arity-1
/// predicates get the singleton EGD `P(U0), P(V0) -> U0 = V0`. The
/// EGD-heavy families the merge-delta equivalence tests chase — random
/// existentials invent nulls, random keys merge them away again.
pub fn random_egd_mix(cfg: &RandomTgdConfig, egds: usize) -> ConstraintSet {
    let tgds = random_tgds(cfg);
    let schema = tgds.schema().expect("consistent generated schema");
    let preds = schema.predicates();
    if preds.is_empty() {
        return tgds;
    }
    let mut out: Vec<Constraint> = tgds.iter().cloned().collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed_e9d5_0b5e_55ed);
    for _ in 0..egds {
        let p = preds[rng.gen_range(0..preds.len())];
        let ar = schema.arity(p).expect("predicate in schema");
        // Two body atoms agreeing on the key position; every other
        // position gets a side-local variable, and the value position's
        // pair is equated.
        let (key, val) = if ar == 1 {
            (None, 0)
        } else {
            let key = rng.gen_range(0..ar);
            let mut val = rng.gen_range(0..ar - 1);
            if val >= key {
                val += 1;
            }
            (Some(key), val)
        };
        let side = |tag: &str| -> Atom {
            let terms = (0..ar)
                .map(|i| {
                    if Some(i) == key {
                        Term::var("K")
                    } else {
                        Term::var(&format!("{tag}{i}"))
                    }
                })
                .collect();
            Atom::new(p, terms)
        };
        let egd = Egd::new(
            vec![side("U"), side("V")],
            Sym::new(&format!("U{val}")),
            Sym::new(&format!("V{val}")),
        )
        .expect("generated EGD is well-formed");
        out.push(Constraint::Egd(egd));
    }
    ConstraintSet::from_constraints(out).expect("consistent generated schema")
}

/// Shape of a merge-storm workload: an EGD-heavy update stream in which
/// early batches declare entities (whose attribute TGDs invent labeled
/// nulls) and later batches deliver the ground attribute values (whose key
/// EGDs merge those nulls away again) — every batch after the first fires
/// merges against a warm instance.
#[derive(Debug, Clone)]
pub struct MergeStormConfig {
    /// Number of entities (`e0 … e{n−1}`).
    pub entities: usize,
    /// Attribute predicates per entity (`A0 … A{k−1}`, each with its own
    /// invention TGD and key EGD).
    pub attributes: usize,
    /// Ground-value pool size (`v0 … v{m−1}`); small pools make rewritten
    /// rows collapse onto existing duplicates more often.
    pub values: usize,
    /// Number of update batches (≥ 2: values always land strictly after
    /// their entity's declaration).
    pub batches: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MergeStormConfig {
    fn default() -> MergeStormConfig {
        MergeStormConfig {
            entities: 60,
            attributes: 3,
            values: 8,
            batches: 10,
            seed: 0,
        }
    }
}

/// The merge-storm constraint set for `attributes` attribute predicates:
/// per attribute `j`, an invention TGD `Ent(E) -> Aj(E,V)`, the
/// cross-table key EGD `Aj(E,V1), Valj(E,V2) -> V1 = V2` (the base table
/// `Valj` holds the ground values, so even a from-scratch chase must
/// invent the null first and merge it away afterwards — the merges cannot
/// be satisfied into nonexistence by base facts), the self-key
/// `Aj(E,V1), Aj(E,V2) -> V1 = V2`, and a propagation TGD
/// `Aj(E,V) -> Uses(V)` so each invented null occurs in more than one fact
/// (merges rewrite surviving rows, not just collapse duplicates).
pub fn merge_storm_sigma(attributes: usize) -> ConstraintSet {
    let mut text = String::new();
    for j in 0..attributes {
        text.push_str(&format!("Ent(E) -> A{j}(E,V)\n"));
        text.push_str(&format!("A{j}(E,V1), Val{j}(E,V2) -> V1 = V2\n"));
        text.push_str(&format!("A{j}(E,V1), A{j}(E,V2) -> V1 = V2\n"));
        text.push_str(&format!("A{j}(E,V) -> Uses(V)\n"));
    }
    ConstraintSet::parse(&text).expect("merge-storm sigma parses")
}

/// Generate a merge-storm workload: [`merge_storm_sigma`] plus an update
/// stream in which each entity's `Ent(e)` declaration lands in a random
/// non-final batch and each of its ground attribute values `Valj(e, v)`
/// lands in a random strictly later batch. Chasing the stream warm invents
/// one null per (entity, attribute) and later merges it into the ground
/// value; a from-scratch chase of any prefix union pays the same
/// invent-then-merge work for *every* entity again. Deterministic per
/// seed; each (entity, attribute) gets exactly one ground value, so the
/// chase never fails on a constant–constant conflict.
pub fn merge_storm_stream(cfg: &MergeStormConfig) -> (ConstraintSet, Vec<Vec<Atom>>) {
    let set = merge_storm_sigma(cfg.attributes);
    let batches = cfg.batches.max(2);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = vec![Vec::new(); batches];
    for e in 0..cfg.entities {
        let eb = rng.gen_range(0..batches - 1);
        let ent = Term::constant(&format!("e{e}"));
        out[eb].push(Atom::new("Ent", vec![ent]));
        for j in 0..cfg.attributes {
            let vb = rng.gen_range(eb + 1..batches);
            let v = rng.gen_range(0..cfg.values.max(1));
            out[vb].push(Atom::new(
                format!("Val{j}").as_str(),
                vec![ent, Term::constant(&format!("v{v}"))],
            ));
        }
    }
    (set, out)
}

/// Shape of a random instance.
#[derive(Debug, Clone)]
pub struct RandomInstanceConfig {
    /// Number of facts.
    pub facts: usize,
    /// Constant pool size (`c0 … c{n−1}`).
    pub domain: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomInstanceConfig {
    fn default() -> RandomInstanceConfig {
        RandomInstanceConfig {
            facts: 10,
            domain: 5,
            seed: 0,
        }
    }
}

/// Generate a random instance over the schema of `set` according to `cfg`.
pub fn random_instance(set: &ConstraintSet, cfg: &RandomInstanceConfig) -> Instance {
    let schema = set.schema().expect("consistent schema");
    let preds = schema.predicates();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut inst = Instance::new();
    if preds.is_empty() {
        return inst;
    }
    for _ in 0..cfg.facts {
        let p = preds[rng.gen_range(0..preds.len())];
        let ar = schema.arity(p).expect("predicate in schema");
        let terms: Vec<Term> = (0..ar)
            .map(|_| Term::constant(&format!("c{}", rng.gen_range(0..cfg.domain))))
            .collect();
        inst.insert(Atom::new(p, terms));
    }
    inst
}

/// Shape of a random travel network for the Figure 9 constraints
/// (`fly`/`rail` over cities, with durations) — sized so the parallel
/// engine's sharded matching has work to chew on.
#[derive(Debug, Clone)]
pub struct RandomTravelConfig {
    /// City pool size (`city0 … city{n−1}`).
    pub cities: usize,
    /// Number of `fly(c1, c2, d)` facts.
    pub flights: usize,
    /// Number of `rail(c1, c2, d)` facts.
    pub rails: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomTravelConfig {
    fn default() -> RandomTravelConfig {
        RandomTravelConfig {
            cities: 50,
            flights: 400,
            rails: 200,
            seed: 0,
        }
    }
}

/// Generate a random travel network matching the schema of
/// [`crate::paper::fig9_travel`]: `flights + rails` facts over `cities`
/// cities with a small duration pool. Deterministic per seed; duplicate
/// facts collapse, so the instance may be slightly smaller than requested.
pub fn random_travel_instance(cfg: &RandomTravelConfig) -> Instance {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut inst = Instance::new();
    let cities = cfg.cities.max(2);
    let fact = |rng: &mut StdRng, pred: &str| {
        let a = rng.gen_range(0..cities);
        let mut b = rng.gen_range(0..cities - 1);
        if b >= a {
            b += 1; // no self-loops: keep routes between distinct cities
        }
        let d = rng.gen_range(0..8usize);
        Atom::new(
            pred,
            vec![
                Term::constant(&format!("city{a}")),
                Term::constant(&format!("city{b}")),
                Term::constant(&format!("d{d}")),
            ],
        )
    };
    for _ in 0..cfg.flights {
        let a = fact(&mut rng, "fly");
        inst.insert(a);
    }
    for _ in 0..cfg.rails {
        let a = fact(&mut rng, "rail");
        inst.insert(a);
    }
    inst
}

/// Shape of a seeded update stream: a base-fact instance cut into an
/// initial load plus a sequence of update batches — the workload shape the
/// `chase-serve` session layer and the `session_updates` bench consume.
#[derive(Debug, Clone)]
pub struct UpdateStreamConfig {
    /// Number of batches to cut the instance into (≥ 1; the first batch is
    /// the initial load).
    pub batches: usize,
    /// RNG seed for the shuffle that decides which facts land in which
    /// batch. Equal seeds give equal streams.
    pub seed: u64,
}

impl Default for UpdateStreamConfig {
    fn default() -> UpdateStreamConfig {
        UpdateStreamConfig {
            batches: 8,
            seed: 0,
        }
    }
}

/// Cut `inst` into `cfg.batches` update batches: a seeded Fisher–Yates
/// shuffle of the facts, split into near-equal chunks (earlier chunks get
/// the remainder). Deterministic per seed; the union of the batches is
/// exactly `inst`.
///
/// # Examples
///
/// ```
/// use chase_core::Instance;
/// use chase_corpus::random::{update_stream, UpdateStreamConfig};
///
/// let inst = Instance::parse("E(a,b). E(b,c). E(c,d). E(d,e). E(e,f).").unwrap();
/// let cfg = UpdateStreamConfig { batches: 3, seed: 1 };
/// let stream = update_stream(&inst, &cfg);
/// assert_eq!(stream.len(), 3);
/// assert_eq!(stream.iter().map(Vec::len).sum::<usize>(), inst.len());
/// ```
pub fn update_stream(inst: &Instance, cfg: &UpdateStreamConfig) -> Vec<Vec<Atom>> {
    let mut atoms = inst.atoms();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Fisher–Yates (the vendored rand stand-in has no `shuffle`).
    for i in (1..atoms.len()).rev() {
        let j = rng.gen_range(0..=i);
        atoms.swap(i, j);
    }
    let batches = cfg.batches.max(1);
    let base = atoms.len() / batches;
    let rem = atoms.len() % batches;
    let mut out = Vec::with_capacity(batches);
    let mut it = atoms.into_iter();
    for b in 0..batches {
        let take = base + usize::from(b < rem);
        out.push(it.by_ref().take(take).collect());
    }
    out
}

/// A seeded travel update stream: [`random_travel_instance`] facts cut into
/// batches with [`update_stream`] (same seed drives both), matching the
/// Figure 9 travel constraints.
pub fn random_travel_stream(travel: &RandomTravelConfig, batches: usize) -> Vec<Vec<Atom>> {
    update_stream(
        &random_travel_instance(travel),
        &UpdateStreamConfig {
            batches,
            seed: travel.seed,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = RandomTgdConfig::default();
        let a = random_tgds(&cfg);
        let b = random_tgds(&cfg);
        assert_eq!(a.to_string(), b.to_string());
        let c = random_tgds(&RandomTgdConfig { seed: 1, ..cfg });
        assert_ne!(a.to_string(), c.to_string());
    }

    #[test]
    fn generated_sets_are_well_formed() {
        for seed in 0..20 {
            let cfg = RandomTgdConfig {
                constraints: 5,
                seed,
                ..RandomTgdConfig::default()
            };
            let s = random_tgds(&cfg);
            assert_eq!(s.len(), 5);
            s.schema().expect("schema consistent");
            // Reparse round-trip.
            let re = ConstraintSet::parse(&s.to_string()).expect("display parses");
            assert_eq!(re.to_string(), s.to_string());
        }
    }

    #[test]
    fn travel_instances_are_deterministic_and_well_typed() {
        let cfg = RandomTravelConfig {
            cities: 10,
            flights: 40,
            rails: 20,
            seed: 3,
        };
        let a = random_travel_instance(&cfg);
        let b = random_travel_instance(&cfg);
        assert_eq!(a, b);
        assert!(a.len() <= 60);
        assert!(a.len() > 30); // some duplicates, not a collapse
        let schema = a.schema().unwrap();
        for p in schema.predicates() {
            assert_eq!(schema.arity(p), Some(3));
            assert!(p.as_str() == "fly" || p.as_str() == "rail");
        }
        // Chaseable by the Figure 9 constraints without schema mismatch.
        let mut merged = crate::paper::fig9_travel().schema().unwrap();
        merged
            .merge(&schema)
            .expect("travel instance fits the fig9 schema");
    }

    #[test]
    fn update_streams_partition_the_instance() {
        let inst = random_travel_instance(&RandomTravelConfig {
            cities: 12,
            flights: 50,
            rails: 30,
            seed: 9,
        });
        let cfg = UpdateStreamConfig {
            batches: 5,
            seed: 9,
        };
        let a = update_stream(&inst, &cfg);
        let b = update_stream(&inst, &cfg);
        assert_eq!(a, b, "streams are deterministic per seed");
        assert_eq!(a.len(), 5);
        // The union of the batches is exactly the instance, duplicate-free.
        let mut union = Instance::new();
        for batch in &a {
            for atom in batch {
                assert!(union.insert(atom.clone()), "batches never overlap");
            }
        }
        assert_eq!(&union, &inst);
        // Chunks are near-equal: sizes differ by at most one.
        let sizes: Vec<usize> = a.iter().map(Vec::len).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "unbalanced batches: {sizes:?}");
        // More batches than facts: trailing batches come out empty rather
        // than panicking.
        let tiny = Instance::parse("E(a,b).").unwrap();
        let wide = update_stream(
            &tiny,
            &UpdateStreamConfig {
                batches: 4,
                seed: 0,
            },
        );
        assert_eq!(wide.len(), 4);
        assert_eq!(wide.iter().map(Vec::len).sum::<usize>(), 1);
    }

    #[test]
    fn egd_mixes_are_well_formed_and_deterministic() {
        for seed in 0..10 {
            let cfg = RandomTgdConfig {
                constraints: 3,
                seed,
                ..RandomTgdConfig::default()
            };
            let s = random_egd_mix(&cfg, 2);
            assert_eq!(s.len(), 5, "3 TGDs + 2 EGDs");
            assert_eq!(
                s.iter().filter(|c| matches!(c, Constraint::Egd(_))).count(),
                2
            );
            s.schema().expect("schema consistent");
            let re = ConstraintSet::parse(&s.to_string()).expect("display parses");
            assert_eq!(re.to_string(), s.to_string());
            assert_eq!(s.to_string(), random_egd_mix(&cfg, 2).to_string());
        }
    }

    #[test]
    fn merge_storm_streams_order_values_after_entities() {
        let cfg = MergeStormConfig {
            entities: 20,
            attributes: 2,
            values: 4,
            batches: 6,
            seed: 5,
        };
        let (set, stream) = merge_storm_stream(&cfg);
        assert_eq!(
            set.len(),
            8,
            "2 attributes × (invention, val-key, self-key, propagation)"
        );
        assert_eq!(stream, merge_storm_stream(&cfg).1, "deterministic per seed");
        assert_eq!(stream.len(), 6);
        let total: usize = stream.iter().map(Vec::len).sum();
        assert_eq!(total, 20 * (1 + 2), "one Ent plus one value per attribute");
        // Every ground attribute value lands strictly after its entity.
        let mut declared_at = std::collections::HashMap::new();
        for (b, batch) in stream.iter().enumerate() {
            for a in batch {
                if a.pred() == chase_core::Sym::new("Ent") {
                    declared_at.insert(a.terms()[0], b);
                }
            }
        }
        for (b, batch) in stream.iter().enumerate() {
            for a in batch {
                if a.pred() != chase_core::Sym::new("Ent") {
                    let e = a.terms()[0];
                    assert!(
                        declared_at[&e] < b,
                        "value {a} in batch {b} not after its Ent declaration"
                    );
                }
            }
        }
    }

    #[test]
    fn random_instances_respect_schema() {
        let set = ConstraintSet::parse("E(X,Y) -> E(Y,X)\nS(X) -> E(X,Y)").unwrap();
        let inst = random_instance(
            &set,
            &RandomInstanceConfig {
                facts: 30,
                domain: 4,
                seed: 7,
            },
        );
        assert!(inst.len() <= 30); // duplicates collapse
        let schema = inst.schema().unwrap();
        for p in schema.predicates() {
            assert!(set.schema().unwrap().contains(p));
        }
    }
}
