#![warn(missing_docs)]

//! # chase-corpus
//!
//! Every named constraint set, instance and query from *On Chase Termination
//! Beyond Stratification* ([`paper`]), scalable synthetic families for
//! benchmarks ([`families`]), seeded random workload generators
//! ([`random`]), and the Turing-machine-to-TGD encoding from the proof of
//! Theorem 8 ([`turing`]).
//!
//! The corpus is shared by the integration tests (which pin the paper's
//! claims), the examples, and the benchmark harness.
//!
//! # Examples
//!
//! Named paper workloads and seeded generators compose with any engine:
//!
//! ```
//! use chase_corpus::{paper, random};
//!
//! // Example 4's constraint set — stratified, yet divergent under the
//! // wrong chase order.
//! let sigma = paper::example4_sigma();
//! assert_eq!(sigma.len(), 4);
//!
//! // Seeded generation is reproducible: same config, same workload.
//! let cfg = random::RandomTravelConfig { cities: 10, flights: 30, rails: 15, seed: 7 };
//! assert_eq!(random::random_travel_instance(&cfg), random::random_travel_instance(&cfg));
//!
//! // Update streams cut an instance into batches for `chase-serve`
//! // sessions; their union is exactly the instance.
//! let inst = random::random_travel_instance(&cfg);
//! let stream = random::update_stream(&inst, &random::UpdateStreamConfig { batches: 4, seed: 7 });
//! assert_eq!(stream.iter().map(Vec::len).sum::<usize>(), inst.len());
//! ```

pub mod families;
pub mod paper;
pub mod random;
pub mod scenarios;
pub mod turing;
