#![warn(missing_docs)]

//! # chase-corpus
//!
//! Every named constraint set, instance and query from *On Chase Termination
//! Beyond Stratification* ([`paper`]), scalable synthetic families for
//! benchmarks ([`families`]), seeded random workload generators
//! ([`random`]), and the Turing-machine-to-TGD encoding from the proof of
//! Theorem 8 ([`turing`]).
//!
//! The corpus is shared by the integration tests (which pin the paper's
//! claims), the examples, and the benchmark harness.

pub mod families;
pub mod paper;
pub mod random;
pub mod scenarios;
pub mod turing;
