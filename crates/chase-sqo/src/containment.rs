//! Conjunctive-query containment and equivalence under constraints.
//!
//! Classically `q1 ⊑ q2` iff `q2` maps homomorphically into `q1`'s frozen
//! canonical instance hitting `q1`'s head. Under a constraint set `Σ` the
//! canonical instance is first chased (`q1 ⊑Σ q2` iff the frozen head of
//! `q1` is among `q2`'s answers on `chase_Σ(freeze(q1))`) — sound and
//! complete when the chase terminates. Since termination is exactly what
//! cannot be taken for granted here, every check runs under a caller-chosen
//! budget and returns `None` ("unknown") when the chase was cut off.

use chase_core::homomorphism::Subst;
use chase_core::{ConjunctiveQuery, ConstraintSet, Instance, Sym, Term};
use chase_engine::{chase, ChaseConfig, StopReason};

/// Freeze `q` and chase it; returns the chased instance and the frozen head
/// tuple (with chase-time EGD merges applied), or `None` when the chase did
/// not terminate.
pub(crate) fn chased_canonical(
    q: &ConjunctiveQuery,
    set: &ConstraintSet,
    cfg: &ChaseConfig,
) -> Option<(Instance, Vec<Term>)> {
    let (frozen, var_map) = q.freeze();
    let mut head: Vec<Term> = q
        .head_args()
        .iter()
        .map(|t| match t {
            Term::Var(v) => Term::Null(var_map[v]),
            other => *other,
        })
        .collect();
    let mut run_cfg = cfg.clone();
    run_cfg.keep_trace = true; // needed to replay EGD merges onto the head
    let res = chase(&frozen, set, &run_cfg);
    if res.reason != StopReason::Satisfied {
        return None;
    }
    for rec in &res.trace {
        if let Some((from, to)) = rec.merged {
            for t in &mut head {
                if *t == from {
                    *t = to;
                }
            }
        }
    }
    Some((res.instance, head))
}

/// Is `q1 ⊑Σ q2` (every answer of `q1` is an answer of `q2` on every
/// instance satisfying `Σ`)? `None` when the chase budget was exhausted.
pub fn contained_under(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    set: &ConstraintSet,
    cfg: &ChaseConfig,
) -> Option<bool> {
    if q1.head_args().len() != q2.head_args().len() {
        return Some(false);
    }
    let (chased, head) = chased_canonical(q1, set, cfg)?;
    // q2's answers on the chased canonical instance must include q1's
    // frozen head. Nulls act as plain domain values here, so a direct
    // seeded homomorphism search does the job.
    let mut found = false;
    chase_core::homomorphism::for_each_hom(q2.body(), &chased, &Subst::new(), false, &mut |h| {
        let tuple: Vec<Term> = q2.head_args().iter().map(|&t| h.apply(t)).collect();
        if tuple == head {
            found = true;
            true
        } else {
            false
        }
    });
    Some(found)
}

/// Is `q1 ≡Σ q2`? `None` when either direction's chase was cut off.
pub fn equivalent_under(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    set: &ConstraintSet,
    cfg: &ChaseConfig,
) -> Option<bool> {
    match contained_under(q1, q2, set, cfg)? {
        false => Some(false),
        true => contained_under(q2, q1, set, cfg),
    }
}

/// Plain CQ containment (no constraints): `q1 ⊑ q2`.
pub fn contained(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    contained_under(q1, q2, &ConstraintSet::new(), &ChaseConfig::default())
        .expect("empty-Σ chase terminates immediately")
}

/// Renames `q`'s head predicate (containment ignores the head name, but the
/// rewriting pipeline wants consistent names).
pub fn with_head_pred(q: &ConjunctiveQuery, name: &str) -> ConjunctiveQuery {
    ConjunctiveQuery::new(Sym::new(name), q.head_args().to_vec(), q.body().to_vec())
        .expect("renaming the head preserves well-formedness")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn classical_containment() {
        // More atoms = more constrained = contained in the 1-atom query.
        let small = q("q(X) <- E(X,Y)");
        let big = q("q(X) <- E(X,Y), E(Y,Z)");
        assert!(contained(&big, &small));
        assert!(!contained(&small, &big));
    }

    #[test]
    fn self_containment_modulo_renaming() {
        let a = q("q(X) <- E(X,Y), E(Y,X)");
        let b = q("p(U) <- E(U,V), E(V,U)");
        assert!(contained(&a, &b));
        assert!(contained(&b, &a));
    }

    #[test]
    fn constants_matter() {
        let with_const = q("q(X) <- E(c,X)");
        let general = q("q(X) <- E(Y,X)");
        assert!(contained(&with_const, &general));
        assert!(!contained(&general, &with_const));
    }

    #[test]
    fn containment_under_constraints() {
        // Under rail-symmetry, the reversed atom is implied.
        let set = ConstraintSet::parse("rail(X,Y,D) -> rail(Y,X,D)").unwrap();
        let q1 = q("q(X) <- rail(c,X,D)");
        let q2 = q("q(X) <- rail(c,X,D), rail(X,c,D)");
        assert_eq!(
            contained_under(&q1, &q2, &set, &ChaseConfig::default()),
            Some(true)
        );
        // Without Σ the containment fails.
        assert!(!contained(&q1, &q2));
        assert_eq!(
            equivalent_under(&q1, &q2, &set, &ChaseConfig::default()),
            Some(true)
        );
    }

    #[test]
    fn budget_exhaustion_is_unknown() {
        let set = ConstraintSet::parse("S(X) -> E(X,Y), S(Y)").unwrap();
        let q1 = q("q(X) <- S(X)");
        let cfg = ChaseConfig::with_max_steps(10);
        assert_eq!(contained_under(&q1, &q1, &set, &cfg), None);
    }

    #[test]
    fn egd_merges_propagate_to_the_head() {
        // The key constraint merges Y into b; q1 ⊑Σ q2 despite the head
        // variable being equated away.
        let set = ConstraintSet::parse("E(X,Y), E(X,Z) -> Y = Z").unwrap();
        let q1 = q("q(Y) <- E(a,b), E(a,Y)");
        let q2 = q("q(Y) <- E(a,Y), E(a,b)");
        assert_eq!(
            equivalent_under(&q1, &q2, &set, &ChaseConfig::default()),
            Some(true)
        );
    }
}
