#![warn(missing_docs)]

//! # chase-sqo
//!
//! Semantic query optimization with the chase — the application domain
//! motivating the paper's data-dependent analysis (Section 4).
//!
//! The pipeline mirrors Deutsch–Popa–Tannen query reformulation as the paper
//! describes it:
//!
//! 1. freeze the conjunctive query into its canonical instance
//!    ([`chase_core::ConjunctiveQuery::freeze`]),
//! 2. chase it under the constraint set into the **universal plan**
//!    ([`universal_plan`]) — guarded by budgets/monitors because the chase
//!    need not terminate,
//! 3. enumerate subqueries of the universal plan that remain equivalent
//!    under the constraints ([`rewrite::equivalent_subqueries`],
//!    [`rewrite::minimal_rewritings`]), yielding join-elimination and
//!    join-introduction rewritings like the paper's q2'' and q2'''.
//!
//! Containment and equivalence under constraints live in [`containment`].
//!
//! # Examples
//!
//! Join elimination under rail symmetry (the paper's q2''-style shrink):
//!
//! ```
//! use chase_core::{ConjunctiveQuery, ConstraintSet};
//! use chase_engine::ChaseConfig;
//! use chase_sqo::{equivalent_under, minimal_rewritings};
//!
//! let sigma = ConstraintSet::parse("rail(X,Y,D) -> rail(Y,X,D)").unwrap();
//! let q = ConjunctiveQuery::parse("q(X) <- rail(c,X,D), rail(X,c,D)").unwrap();
//! let minimal = minimal_rewritings(&q, &sigma, &ChaseConfig::default(), 12).unwrap();
//! // One rail atom suffices: its mirror image is implied by Σ.
//! assert_eq!(minimal[0].body().len(), 1);
//! assert_eq!(equivalent_under(&minimal[0], &q, &sigma, &ChaseConfig::default()), Some(true));
//! ```

pub mod containment;
pub mod rewrite;

pub use containment::{contained_under, equivalent_under};
pub use rewrite::{equivalent_subqueries, minimal_rewritings, universal_plan, SqoError};
