//! Universal plans and rewriting enumeration (Section 4's SQO scenario).
//!
//! Chasing a frozen query yields the *universal plan*: a query incorporating
//! every constraint-implied atom. Any subquery of the plan that remains
//! equivalent to the original under `Σ` is a valid rewriting; dropping atoms
//! is join **elimination** (the paper's q2''), keeping implied atoms absent
//! from the original is join **introduction** (q2''').

use crate::containment::{chased_canonical, equivalent_under};
use chase_core::{ConjunctiveQuery, ConstraintSet, CoreError, Instance};
use chase_engine::ChaseConfig;
use std::fmt;

/// Errors of the rewriting pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqoError {
    /// The chase of the frozen query did not terminate within its budget;
    /// use the data-dependent analyses of Section 4 before retrying.
    NonTerminatingChase,
    /// The universal plan has too many atoms for exhaustive subset
    /// enumeration.
    PlanTooLarge(usize),
    /// Query construction failed.
    Core(CoreError),
}

impl fmt::Display for SqoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqoError::NonTerminatingChase => {
                write!(
                    f,
                    "the chase of the frozen query did not terminate within budget"
                )
            }
            SqoError::PlanTooLarge(n) => {
                write!(
                    f,
                    "universal plan has {n} atoms; subset enumeration refused"
                )
            }
            SqoError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SqoError {}

impl From<CoreError> for SqoError {
    fn from(e: CoreError) -> SqoError {
        SqoError::Core(e)
    }
}

/// The universal plan of `q` under `Σ`: the frozen query chased to
/// completion and thawed back into a query.
///
/// # Examples
///
/// ```
/// use chase_core::{ConjunctiveQuery, ConstraintSet};
/// use chase_engine::ChaseConfig;
/// use chase_sqo::rewrite::{body_signature, universal_plan};
///
/// let sigma = ConstraintSet::parse("emp(E,D) -> dept(D)").unwrap();
/// let q = ConjunctiveQuery::parse("q(E) <- emp(E,D)").unwrap();
/// let plan = universal_plan(&q, &sigma, &ChaseConfig::default()).unwrap();
/// assert_eq!(body_signature(&plan), vec!["dept", "emp"]);
/// ```
pub fn universal_plan(
    q: &ConjunctiveQuery,
    set: &ConstraintSet,
    cfg: &ChaseConfig,
) -> Result<ConjunctiveQuery, SqoError> {
    let (chased, head) = chased_canonical(q, set, cfg).ok_or(SqoError::NonTerminatingChase)?;
    Ok(ConjunctiveQuery::thaw(&chased, q.head_pred(), &head)?)
}

/// All subqueries of the universal plan of `q` that are equivalent to `q`
/// under `Σ`, smallest bodies first (ties in deterministic subset order).
///
/// `max_plan_atoms` bounds the exhaustive subset enumeration (the plan for a
/// hand-written query is small; refuse absurd inputs instead of hanging).
pub fn equivalent_subqueries(
    q: &ConjunctiveQuery,
    set: &ConstraintSet,
    cfg: &ChaseConfig,
    max_plan_atoms: usize,
) -> Result<Vec<ConjunctiveQuery>, SqoError> {
    let plan = universal_plan(q, set, cfg)?;
    let atoms = plan.body().to_vec();
    if atoms.len() > max_plan_atoms {
        return Err(SqoError::PlanTooLarge(atoms.len()));
    }
    // Head variables must keep occurring in the kept atoms.
    let head_vars: Vec<_> = plan.head_args().iter().filter_map(|t| t.as_var()).collect();
    let mut masks: Vec<u32> = (1..(1u32 << atoms.len())).collect();
    masks.sort_by_key(|m| m.count_ones());
    let mut out = Vec::new();
    for mask in masks {
        let body: Vec<_> = atoms
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, a)| a.clone())
            .collect();
        let covered = head_vars
            .iter()
            .all(|v| body.iter().any(|a| a.vars().contains(v)));
        if !covered {
            continue;
        }
        let cand = match ConjunctiveQuery::new(q.head_pred(), plan.head_args().to_vec(), body) {
            Ok(c) => c,
            Err(_) => continue,
        };
        if equivalent_under(&cand, q, set, cfg) == Some(true) {
            out.push(cand);
        }
    }
    Ok(out)
}

/// The minimum-size equivalent rewritings of `q` under `Σ` (all subqueries
/// of the universal plan with the fewest body atoms).
pub fn minimal_rewritings(
    q: &ConjunctiveQuery,
    set: &ConstraintSet,
    cfg: &ChaseConfig,
    max_plan_atoms: usize,
) -> Result<Vec<ConjunctiveQuery>, SqoError> {
    let all = equivalent_subqueries(q, set, cfg, max_plan_atoms)?;
    let min = match all.iter().map(|c| c.body().len()).min() {
        Some(m) => m,
        None => return Ok(Vec::new()),
    };
    Ok(all.into_iter().filter(|c| c.body().len() == min).collect())
}

/// Convenience: does `inst` (a frozen-query canonical database) have the
/// same atoms as `q`'s freeze, up to homomorphic equivalence? Used by tests
/// comparing rewritings structurally.
pub fn queries_hom_equivalent(a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> bool {
    let fa: Instance = a.freeze().0;
    let fb: Instance = b.freeze().0;
    chase_core::homomorphism::hom_equivalent(&fa, &fb)
}

/// Body signature of a query as sorted predicate names — handy for asserting
/// which rewriting shape was produced.
pub fn body_signature(q: &ConjunctiveQuery) -> Vec<String> {
    let mut v: Vec<String> = q
        .body()
        .iter()
        .map(|a| a.pred().as_str().to_owned())
        .collect();
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn universal_plan_adds_implied_atoms() {
        let set = ConstraintSet::parse("emp(E,D) -> dept(D)").unwrap();
        let query = q("q(E) <- emp(E,D)");
        let plan = universal_plan(&query, &set, &ChaseConfig::default()).unwrap();
        assert_eq!(plan.body().len(), 2);
        assert_eq!(body_signature(&plan), vec!["dept", "emp"]);
    }

    #[test]
    fn join_elimination_via_symmetry() {
        let set = ConstraintSet::parse("rail(X,Y,D) -> rail(Y,X,D)").unwrap();
        let query = q("q(X) <- rail(c,X,D), rail(X,c,D)");
        let minimal = minimal_rewritings(&query, &set, &ChaseConfig::default(), 12).unwrap();
        assert!(!minimal.is_empty());
        assert_eq!(minimal[0].body().len(), 1, "one rail atom suffices");
    }

    #[test]
    fn equivalent_subqueries_include_the_plan_itself() {
        let set = ConstraintSet::parse("emp(E,D) -> dept(D)").unwrap();
        let query = q("q(E) <- emp(E,D)");
        let subs = equivalent_subqueries(&query, &set, &ChaseConfig::default(), 12).unwrap();
        // emp alone, and emp+dept.
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].body().len(), 1);
        assert_eq!(subs[1].body().len(), 2);
    }

    #[test]
    fn nonterminating_chase_is_an_error() {
        let set = ConstraintSet::parse("S(X) -> E(X,Y), S(Y)").unwrap();
        let query = q("q(X) <- S(X)");
        let cfg = ChaseConfig::with_max_steps(10);
        assert_eq!(
            universal_plan(&query, &set, &cfg),
            Err(SqoError::NonTerminatingChase)
        );
    }

    #[test]
    fn head_variables_are_never_dropped() {
        let set = ConstraintSet::new();
        let query = q("q(X,Z) <- E(X,Y), E(Y,Z)");
        let subs = equivalent_subqueries(&query, &set, &ChaseConfig::default(), 12).unwrap();
        for s in &subs {
            let vars: Vec<_> = s.body().iter().flat_map(|a| a.vars()).collect();
            assert!(vars.contains(&chase_core::Sym::new("V0")) || !s.body().is_empty());
            for h in s.head_args() {
                if let Some(v) = h.as_var() {
                    assert!(s.body().iter().any(|a| a.vars().contains(&v)));
                }
            }
        }
    }
}
