//! Chase graphs (Definition 3) and c-chase graphs (Definition 5).
//!
//! Nodes are constraint indices; an edge `(α, β)` records `α ≺ β`
//! (respectively `α ≺c β`): firing `α` can newly violate `β`. Oracle
//! queries that hit a resource limit are recorded as edges *and* flagged —
//! extra edges can only merge strongly connected components, which keeps
//! every "yes, terminates" conclusion drawn from the graph sound.

use crate::graphs::Digraph;
use crate::precedence::{precedes, precedes_c, PrecedenceConfig, Verdict};
use chase_core::ConstraintSet;

/// A chase graph over the constraints of a set.
#[derive(Debug, Clone)]
pub struct ChaseGraph {
    /// The underlying digraph; node `i` is constraint `i`.
    pub graph: Digraph,
    /// Edges that were added conservatively because the precedence oracle
    /// gave up, as `(from, to)` pairs.
    pub unknown_edges: Vec<(usize, usize)>,
}

impl ChaseGraph {
    /// Did every oracle query complete (no conservative edges)?
    pub fn is_definite(&self) -> bool {
        self.unknown_edges.is_empty()
    }

    /// DOT rendering with constraint indices as labels.
    pub fn to_dot(&self, name: &str) -> String {
        self.graph.to_dot(name, |v| format!("α{}", v + 1))
    }
}

fn build(
    set: &ConstraintSet,
    cfg: &PrecedenceConfig,
    oracle: impl Fn(&ConstraintSet, usize, usize, &PrecedenceConfig) -> Verdict,
) -> ChaseGraph {
    let n = set.len();
    let mut graph = Digraph::new(n);
    let mut unknown_edges = Vec::new();
    for a in 0..n {
        for b in 0..n {
            match oracle(set, a, b, cfg) {
                Verdict::Holds => graph.add_edge(a, b, false),
                Verdict::Fails => {}
                Verdict::ResourceLimit => {
                    graph.add_edge(a, b, false);
                    unknown_edges.push((a, b));
                }
            }
        }
    }
    ChaseGraph {
        graph,
        unknown_edges,
    }
}

/// The chase graph `G(Σ)` built from `≺` (Definition 3).
pub fn chase_graph(set: &ConstraintSet, cfg: &PrecedenceConfig) -> ChaseGraph {
    build(set, cfg, precedes)
}

/// The c-chase graph `Gc(Σ)` built from `≺c` (Definition 5).
pub fn c_chase_graph(set: &ConstraintSet, cfg: &PrecedenceConfig) -> ChaseGraph {
    build(set, cfg, precedes_c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PrecedenceConfig {
        PrecedenceConfig::default()
    }

    fn example4() -> ConstraintSet {
        ConstraintSet::parse(
            "R(X1) -> S(X1,X1)\n\
             S(X1,X2) -> T(X2,Z)\n\
             S(X1,X2) -> T(X1,X2), T(X2,X1)\n\
             T(X1,X2), T(X1,X3), T(X3,X1) -> R(X2)",
        )
        .unwrap()
    }

    #[test]
    fn example4_chase_graph_alpha2_has_no_successor() {
        // Figure 4: in G(Σ), α2 (index 1) has no outgoing edge — the flaw
        // that made original stratification unsound.
        let g = chase_graph(&example4(), &cfg());
        assert!(g.is_definite());
        assert!(
            g.graph.successors(1).is_empty(),
            "α2 must be a sink in G(Σ)"
        );
        // The full-TGD cycle α1 → α3 → α4 → α1 exists.
        assert!(g.graph.has_edge(0, 2));
        assert!(g.graph.has_edge(2, 3));
        assert!(g.graph.has_edge(3, 0));
    }

    #[test]
    fn example7_c_chase_graph_closes_the_cycle() {
        // Figure 5: in Gc(Σ), α2 → α4 exists, putting α2 on a cycle through
        // the existential constraint.
        let g = c_chase_graph(&example4(), &cfg());
        assert!(g.is_definite());
        assert!(g.graph.has_edge(1, 3), "α2 ≺c α4");
        assert!(g.graph.has_edge(0, 1), "α1 ≺c α2");
        // The single non-trivial SCC is the whole set.
        let sccs = g.graph.nontrivial_sccs();
        assert_eq!(sccs, vec![vec![0, 1, 2, 3]]);
    }
}
