//! Data-dependent termination, static part (Section 4.1).
//!
//! Given a *fixed* instance `I` (typically a frozen query in semantic query
//! optimization), constraints that can never fire while chasing `I` may be
//! ignored when looking for termination guarantees (Lemma 4). Exact
//! `(I,Σ)`-irrelevance is undecidable (Theorem 8), but Proposition 7 gives a
//! sufficient test: encode `I` as an empty-body constraint `αI` and check
//! reachability from `αI` in the c-chase graph of `Σ ∪ {αI}`.

use crate::chasegraph::c_chase_graph;
use crate::hierarchy::{check, Recognition};
use crate::precedence::PrecedenceConfig;
use chase_core::{Constraint, ConstraintSet, CoreError, Instance, Term, Tgd};

/// The instance constraint `αI := → ∃x ⋀ I` of Proposition 7: one empty-body
/// TGD whose head is the instance with labeled nulls promoted to existential
/// variables.
pub fn instance_constraint(inst: &Instance) -> Result<Constraint, CoreError> {
    if inst.is_empty() {
        return Err(CoreError::InvalidConstraint(
            "αI of an empty instance would have an empty head".into(),
        ));
    }
    let head = inst
        .sorted_atoms()
        .into_iter()
        .map(|a| {
            a.map_terms(|t| match t {
                Term::Null(n) => Term::var(&format!("NI{n}")),
                other => other,
            })
        })
        .collect();
    Ok(Constraint::Tgd(Tgd::new(Vec::new(), head)?))
}

/// The constraints of `Σ` that are *possibly relevant* when chasing `I`:
/// those reachable from `αI` (or from an empty-body constraint of `Σ`
/// itself, which can fire regardless of the instance) in the c-chase graph
/// of `Σ ∪ {αI}`.
///
/// Returns the sorted relevant indices and a flag that is `true` when some
/// precedence query was indefinite (edges were added conservatively, which
/// can only enlarge the relevant set — still a sound input to Lemma 4).
pub fn relevant_subset(
    inst: &Instance,
    set: &ConstraintSet,
    cfg: &PrecedenceConfig,
) -> Result<(Vec<usize>, bool), CoreError> {
    let alpha_i = instance_constraint(inst)?;
    let mut extended = set.clone();
    extended.push(alpha_i);
    let ai_index = set.len();
    let g = c_chase_graph(&extended, cfg);
    let mut relevant = vec![false; set.len()];
    let mark_from = |start: usize, relevant: &mut Vec<bool>| {
        for (i, reach) in g.graph.reachable_from(start).into_iter().enumerate() {
            if reach && i < set.len() {
                relevant[i] = true;
            }
        }
    };
    mark_from(ai_index, &mut relevant);
    // Proposition 7 assumes every constraint of Σ has a non-empty body;
    // empty-body constraints fire unconditionally, so treat them as
    // additional sources (and as relevant themselves).
    for (i, c) in set.enumerate() {
        if c.body().is_empty() {
            relevant[i] = true;
            mark_from(i, &mut relevant);
        }
    }
    let out: Vec<usize> = (0..set.len()).filter(|&i| relevant[i]).collect();
    Ok((out, !g.unknown_edges.is_empty()))
}

/// The `(I,Σ)`-irrelevant constraints found by the Proposition 7 test
/// (complement of [`relevant_subset`]).
pub fn irrelevant_constraints(
    inst: &Instance,
    set: &ConstraintSet,
    cfg: &PrecedenceConfig,
) -> Result<(Vec<usize>, bool), CoreError> {
    let (relevant, unknown) = relevant_subset(inst, set, cfg)?;
    let out = (0..set.len()).filter(|i| !relevant.contains(i)).collect();
    Ok((out, unknown))
}

/// Data-dependent termination test (Lemma 4): does the chase of `I` with `Σ`
/// terminate because the possibly-firing subset lies in `T[k]`?
///
/// `Recognition::Yes` guarantees termination of every chase sequence of `I`
/// with `Σ`; `No`/`Unknown` mean the *static* analysis gives no guarantee
/// (fall back to the dynamic monitor guard of Section 4.2).
pub fn data_dependent_terminates(
    inst: &Instance,
    set: &ConstraintSet,
    k: usize,
    cfg: &PrecedenceConfig,
) -> Result<Recognition, CoreError> {
    let (relevant, _unknown) = relevant_subset(inst, set, cfg)?;
    // The relevant subset is itself a valid Σ' for Lemma 4 even when
    // conservative edges enlarged it: Σ \ Σ' remains (I,Σ)-irrelevant.
    let subset = set.subset(&relevant);
    if subset.is_empty() {
        return Ok(Recognition::Yes);
    }
    Ok(check(&subset, k, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PrecedenceConfig {
        PrecedenceConfig::default()
    }

    fn travel() -> ConstraintSet {
        // Figure 9.
        ConstraintSet::parse(
            "fly(C1,C2,D) -> hasAirport(C1), hasAirport(C2)\n\
             rail(C1,C2,D) -> rail(C2,C1,D)\n\
             fly(C1,C2,D) -> fly(C2,C3,D2)",
        )
        .unwrap()
    }

    #[test]
    fn alpha_i_encodes_nulls_as_existentials() {
        let i = Instance::parse("rail(c1,_n0,_n1). fly(_n0,_n2,_n3).").unwrap();
        let c = instance_constraint(&i).unwrap();
        let t = c.as_tgd().unwrap();
        assert!(t.body().is_empty());
        assert_eq!(t.head().len(), 2);
        assert_eq!(t.existentials().len(), 4);
        // The constant c1 stays a constant.
        assert!(t
            .head()
            .iter()
            .any(|a| a.terms().contains(&Term::constant("c1"))));
    }

    #[test]
    fn example16_q2_irrelevance() {
        // q2 (frozen): rail(c1,x1,y1), fly(x1,x2,y2), fly(x2,x1,y2),
        // rail(x1,c1,y1). Example 16: α2 and α3 are (I,Σ)-irrelevant, the
        // rest ({α1}) is inductively restricted, so the chase terminates.
        let set = travel();
        let q2 = Instance::parse(
            "rail(c1,_n0,_n1). fly(_n0,_n2,_n3). fly(_n2,_n0,_n3). rail(_n0,c1,_n1).",
        )
        .unwrap();
        let (irrelevant, unknown) = irrelevant_constraints(&q2, &set, &cfg()).unwrap();
        assert!(!unknown);
        assert_eq!(irrelevant, vec![1, 2], "α2 and α3 are irrelevant");
        assert_eq!(
            data_dependent_terminates(&q2, &set, 2, &cfg()).unwrap(),
            Recognition::Yes
        );
    }

    #[test]
    fn q1_gets_no_static_guarantee() {
        // q1 (frozen): rail(c1,x1,y1), fly(x1,x2,y2) — α3 is relevant and
        // the relevant subset is not in the hierarchy.
        let set = travel();
        let q1 = Instance::parse("rail(c1,_n0,_n1). fly(_n0,_n2,_n3).").unwrap();
        let (relevant, unknown) = relevant_subset(&q1, &set, &cfg()).unwrap();
        assert!(!unknown);
        assert!(relevant.contains(&2), "α3 may fire on q1");
        assert_eq!(
            data_dependent_terminates(&q1, &set, 3, &cfg()).unwrap(),
            Recognition::No
        );
    }

    #[test]
    fn empty_body_constraints_are_always_relevant() {
        let set = ConstraintSet::parse(
            "-> S(X)\n\
             S(X) -> T(X)\n\
             U(X) -> V(X)",
        )
        .unwrap();
        let inst = Instance::parse("W(a).").unwrap();
        let (relevant, _) = relevant_subset(&inst, &set, &cfg()).unwrap();
        assert!(relevant.contains(&0), "empty-body fires regardless");
        assert!(relevant.contains(&1), "fed by the empty-body constraint");
        assert!(!relevant.contains(&2), "U is never produced");
    }
}
