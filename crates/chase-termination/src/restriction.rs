//! Restriction systems (Definitions 11–12 and 15).
//!
//! A minimal k-restriction system is the least fixpoint of two rules over a
//! pair `(E, f)` — a graph over the constraints plus a set of positions:
//!
//! 1. whenever `≺k,f(α1, …, αk)` holds, the edges
//!    `(α1,α2), …, (αk−1,αk)` belong to `E`;
//! 2. for every edge, the *affected closure* `aff-cl(γ, f) ∩ pos(Σ)` of each
//!    TGD endpoint `γ` belongs to `f`.
//!
//! `f` over-approximates the positions at which labeled nulls may occur
//! during the chase *along firing chains that matter*; it both feeds the
//! `≺k,f` oracle and powers the restricted-guardedness refinement of
//! Section 5.

use crate::graphs::Digraph;
use crate::precedence::{precedes_k, PrecedenceConfig, Verdict};
use chase_core::fx::FxHashSet;
use chase_core::{ConstraintSet, PosSet, Tgd};
use std::collections::BTreeSet;
use std::fmt;

/// `aff-cl(α, P)` (Definition 11): head positions of `α` that may carry a
/// null when nulls enter only through positions of `P` — existential
/// positions, plus positions of universal variables whose body occurrences
/// all lie in `P`.
///
/// Head positions holding a constant are *not* included: a constant
/// position cannot receive a null from this head (the definition's "for
/// every universally quantified variable x in π" is read as requiring a
/// variable; see DESIGN.md §4).
pub fn aff_cl(tgd: &Tgd, p: &PosSet) -> PosSet {
    let mut out = PosSet::new();
    for &y in tgd.existentials() {
        out.extend(tgd.head_positions_of(y));
    }
    for &x in tgd.frontier() {
        let body_pos = tgd.body_positions_of(x);
        if !body_pos.is_empty() && body_pos.iter().all(|q| p.contains(q)) {
            out.extend(tgd.head_positions_of(x));
        }
    }
    out
}

/// A minimal k-restriction system `(G'(Σ), f)`.
#[derive(Debug, Clone)]
pub struct RestrictionSystem {
    /// The arity `k` of the precedence relation used.
    pub k: usize,
    /// Edges over constraint indices.
    pub edges: BTreeSet<(usize, usize)>,
    /// The position set `f ⊆ pos(Σ)`.
    pub f: PosSet,
    /// The graph form of `edges` (nodes = constraint indices).
    pub graph: Digraph,
    /// True when some oracle query hit a resource limit and its edges were
    /// added conservatively.
    pub unknown: bool,
}

impl fmt::Display for RestrictionSystem {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(out, "{}-restriction system: edges {{", self.k)?;
        for (i, (a, b)) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(out, ", ")?;
            }
            write!(out, "(α{},α{})", a + 1, b + 1)?;
        }
        write!(out, "}}, f = {{")?;
        for (i, p) in self.f.iter().enumerate() {
            if i > 0 {
                write!(out, ", ")?;
            }
            write!(out, "{p}")?;
        }
        write!(out, "}}")
    }
}

/// Enumerate `Σ^k` sequences (repetitions allowed), calling `f` for each.
fn for_each_sequence(n: usize, k: usize, mut f: impl FnMut(&[usize])) {
    let mut seq = vec![0usize; k];
    loop {
        f(&seq);
        // Odometer increment.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            seq[i] += 1;
            if seq[i] < n {
                break;
            }
            seq[i] = 0;
        }
    }
}

/// Compute the minimal k-restriction system of `Σ` (Definitions 12/15),
/// closing both endpoints of every edge under `aff-cl` as in Definition 12.
pub fn minimal_restriction_system(
    set: &ConstraintSet,
    k: usize,
    cfg: &PrecedenceConfig,
) -> RestrictionSystem {
    assert!(k >= 2, "restriction systems need k ≥ 2");
    let n = set.len();
    let pos_sigma = set.positions();
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut f = PosSet::new();
    let mut unknown = false;
    // Holds-results are monotone in f (a larger f only weakens the null-
    // position requirement), so they are cached across fixpoint rounds;
    // failures are re-queried whenever f grows.
    let mut known_holds: FxHashSet<Vec<usize>> = FxHashSet::default();

    loop {
        let mut changed = false;
        // Rule: ≺k,f sequences contribute their edge chains.
        for_each_sequence(n, k, |seq| {
            let chain_edges: Vec<(usize, usize)> = seq.windows(2).map(|w| (w[0], w[1])).collect();
            if chain_edges.iter().all(|e| edges.contains(e)) {
                return; // nothing new to learn from this sequence
            }
            let verdict = if known_holds.contains(seq) {
                Verdict::Holds
            } else {
                precedes_k(set, seq, &f, cfg)
            };
            match verdict {
                Verdict::Holds => {
                    known_holds.insert(seq.to_vec());
                    for e in chain_edges {
                        changed |= edges.insert(e);
                    }
                }
                Verdict::Fails => {}
                Verdict::ResourceLimit => {
                    unknown = true;
                    for e in chain_edges {
                        changed |= edges.insert(e);
                    }
                }
            }
        });
        // Rule: close f under aff-cl of the endpoints of every edge.
        loop {
            let mut f_changed = false;
            for &(a, b) in &edges {
                for idx in [a, b] {
                    if let Some(tgd) = set[idx].as_tgd() {
                        for p in aff_cl(tgd, &f) {
                            if pos_sigma.contains(&p) && f.insert(p) {
                                f_changed = true;
                            }
                        }
                    }
                }
            }
            if !f_changed {
                break;
            }
            changed = true;
        }
        if !changed {
            break;
        }
    }
    let mut graph = Digraph::new(n);
    for &(a, b) in &edges {
        graph.add_edge(a, b, false);
    }
    RestrictionSystem {
        k,
        edges,
        f,
        graph,
        unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::Position;

    fn cfg() -> PrecedenceConfig {
        PrecedenceConfig::default()
    }

    fn parse(text: &str) -> ConstraintSet {
        ConstraintSet::parse(text).unwrap()
    }

    #[test]
    fn aff_cl_existential_and_closure() {
        let t = chase_core::Tgd::parse("S(X), E(X,Y) -> E(Y,Z), E(Z,X)").unwrap();
        // With P = ∅: only positions of the existential Z.
        let empty = aff_cl(&t, &PosSet::new());
        let expect: PosSet = [Position::new("E", 0), Position::new("E", 1)]
            .into_iter()
            .collect();
        assert_eq!(empty, expect, "Z occurs at E^1 and E^2");
        // With P ⊇ all body positions of Y: Y's head position joins.
        let p: PosSet = [Position::new("E", 1)].into_iter().collect();
        let closed = aff_cl(&t, &p);
        assert!(closed.contains(&Position::new("E", 0)), "Y at head E^1");
    }

    #[test]
    fn example12_minimal_2_restriction_system() {
        // Σ from Example 10: the minimal 2-restriction system has the single
        // edge (α2, α1) and f = {E^1, E^2}.
        let s = parse(
            "S(X), E(X,Y) -> E(Y,X)\n\
             S(X), E(X,Y) -> E(Y,Z), E(Z,X)",
        );
        let rs = minimal_restriction_system(&s, 2, &cfg());
        assert!(!rs.unknown);
        let expect: BTreeSet<(usize, usize)> = [(1, 0)].into_iter().collect();
        assert_eq!(rs.edges, expect, "only α2 ≺f α1");
        let f: PosSet = [Position::new("E", 0), Position::new("E", 1)]
            .into_iter()
            .collect();
        assert_eq!(rs.f, f);
        assert!(rs.graph.nontrivial_sccs().is_empty());
    }

    #[test]
    fn example13_adding_alpha3_creates_the_cycle() {
        // Σ' = Σ ∪ {α3} (empty-body constraint): now S^1 is "infected" and
        // {α1, α2} becomes a strongly connected component.
        let s = parse(
            "S(X), E(X,Y) -> E(Y,X)\n\
             S(X), E(X,Y) -> E(Y,Z), E(Z,X)\n\
             -> S(X), E(X,Y)",
        );
        let rs = minimal_restriction_system(&s, 2, &cfg());
        assert!(!rs.unknown);
        assert!(rs.edges.contains(&(2, 0)), "α3 ≺f α1");
        assert!(rs.edges.contains(&(2, 1)), "α3 ≺f α2");
        assert!(rs.edges.contains(&(0, 1)), "α1 ≺f α2");
        assert!(rs.edges.contains(&(1, 0)), "α2 ≺f α1");
        assert!(rs.f.contains(&Position::new("S", 0)), "S^1 infected");
        let sccs = rs.graph.nontrivial_sccs();
        assert_eq!(sccs, vec![vec![0, 1]], "SCC {{α1, α2}}");
    }

    #[test]
    fn fig2_constraint_has_a_2_self_loop() {
        // §3.5 closing remark: the Figure 2 constraint can cause itself to
        // fire, so its minimal 2-restriction system has the self-edge.
        let s = parse("S(X2), E(X1,X2) -> E(Y,X1)");
        let rs = minimal_restriction_system(&s, 2, &cfg());
        assert!(rs.edges.contains(&(0, 0)));
        assert_eq!(rs.graph.nontrivial_sccs(), vec![vec![0]]);
    }

    #[test]
    fn fig2_constraint_3_restriction_system_is_acyclic() {
        // Example 15 (k = 2 case of Σk+1): ≺2,P holds but ≺3,P does not, so
        // the minimal 3-restriction system is edgeless.
        let s = parse("S(X2), E(X1,X2) -> E(Y,X1)");
        let rs = minimal_restriction_system(&s, 3, &cfg());
        assert!(!rs.unknown);
        assert!(rs.edges.is_empty(), "got {:?}", rs.edges);
    }

    #[test]
    fn weakly_acyclic_copy_set_has_no_restriction_edges() {
        let s = parse("E(X,Y) -> E(Y,X)");
        let rs = minimal_restriction_system(&s, 2, &cfg());
        assert!(rs.edges.is_empty());
        assert!(rs.f.is_empty());
    }

    #[test]
    fn heterogeneous_three_chains_contribute_their_edge_pairs() {
        // a0: A → B, a1: B → ∃C, a2: C → E. The genuine 3-chain
        // ≺3,∅(a0, a1, a2) holds (each step necessary, the final head
        // parameter is the created null), so the 3-restriction system has
        // both chain edges; the 2-system only has (a1, a2) because a0's
        // firing delivers no null to a1's head parameters.
        let s = parse(
            "A(X) -> B(X)\n\
             B(X) -> C(X,Z)\n\
             C(X,Y) -> E(Y)",
        );
        let p = PosSet::new();
        assert_eq!(
            crate::precedence::precedes_k(&s, &[0, 1, 2], &p, &cfg()),
            crate::precedence::Verdict::Holds
        );
        let rs2 = minimal_restriction_system(&s, 2, &cfg());
        assert!(rs2.edges.contains(&(1, 2)));
        assert!(!rs2.edges.contains(&(0, 1)));
        let rs3 = minimal_restriction_system(&s, 3, &cfg());
        assert!(rs3.edges.contains(&(0, 1)), "3-chain contributes (a0,a1)");
        assert!(rs3.edges.contains(&(1, 2)), "3-chain contributes (a1,a2)");
        assert!(rs3.graph.nontrivial_sccs().is_empty(), "still acyclic");
    }

    #[test]
    fn padded_chains_are_rejected_by_necessity() {
        // Same set, but the triple (a2, a0, …) has no dependency from a2
        // into a0 (E feeds nothing), so no ≺3 sequence starting there holds.
        let s = parse(
            "A(X) -> B(X)\n\
             B(X) -> C(X,Z)\n\
             C(X,Y) -> E(Y)",
        );
        let p = PosSet::new();
        for seq in [[2usize, 0, 1], [2, 1, 2], [1, 0, 2]] {
            assert_eq!(
                crate::precedence::precedes_k(&s, &seq, &p, &cfg()),
                crate::precedence::Verdict::Fails,
                "sequence {seq:?} should fail"
            );
        }
    }
}
