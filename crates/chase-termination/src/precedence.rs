//! The precedence oracles `≺` (Definition 2), `≺c` (Definition 4, corrected)
//! and `≺k,P` (Definitions 10/14) — the coNP core of every decomposition-
//! based termination condition.
//!
//! # What is decided
//!
//! `≺k,P(α1, …, αk)` asks for a *witness*: a small initial instance `I0` and
//! assignments `a1, …, ak` such that the oblivious steps
//! `I0 →*α1,a1 … →*αk−1,ak−1 Ik−1` leave `αk(ak)` **newly violated**
//! (`I0 ⊨ αk(ak)` but `Ik−1 ⊭ αk(ak)`), some labeled-null parameter of
//! `αk(ak)`'s head occurs in `I0` only at positions from `P`, and every one
//! of the k−1 steps is necessary (skipping any step leaves `αk(ak)`
//! satisfied). `≺` and `≺c` are the 2-ary variants without the null/P
//! condition, with `≺` additionally requiring the first step to be a
//! *standard* step (`I0 ⊭ α(a)`).
//!
//! # How it is decided
//!
//! Following the paper's decidability argument (Prop. 1/3), it suffices to
//! examine candidate instances of size ≤ Σ|αi| built from homomorphic images
//! of the constraint bodies. The search enumerates
//!
//! 1. a **source** for every body atom in the chain — either `I0` or a head
//!    atom of an earlier step (unifying terms in a labeled union-find),
//! 2. a **partition** of the residual free variables (which identifications
//!    the homomorphic images perform), finest first,
//! 3. a **labelling** of each block — a constant mentioned in `Σ`, a fresh
//!    constant, or (when the P-condition needs nulls) a fresh labeled null,
//!
//! then *materializes* the candidate and **executes the chain for real**,
//! checking every side condition directly on instances. Generation may
//! over-approximate; the executor is the ground truth.
//!
//! # Scope and soundness
//!
//! * Chain *steps* must be TGDs; an EGD-merging step rewrites the instance
//!   mid-chain, which the static unification model cannot track faithfully.
//!   Sequences with EGD steps return [`Verdict::ResourceLimit`] ("unknown"),
//!   and all recognizers treat unknown edges conservatively as present. The
//!   *final* constraint may be a TGD or an EGD. (Every worked example in the
//!   paper is TGD-only; see DESIGN.md §4.)
//! * The enumeration is budgeted; exhausting [`PrecedenceConfig`] budgets
//!   also yields `ResourceLimit`, never a wrong `Fails`.

use chase_core::fx::FxHashMap;
use chase_core::homomorphism::Subst;
use chase_core::{Atom, Constraint, ConstraintSet, Instance, PosSet, Sym, Term};

/// Resource budgets for the candidate-instance search.
#[derive(Debug, Clone)]
pub struct PrecedenceConfig {
    /// Maximum number of materialized candidates per query.
    pub max_candidates: u64,
    /// Maximum number of residual free variables whose partitions are
    /// enumerated (Bell-number growth).
    pub max_free_vars: usize,
}

impl Default for PrecedenceConfig {
    fn default() -> PrecedenceConfig {
        PrecedenceConfig {
            max_candidates: 200_000,
            max_free_vars: 9,
        }
    }
}

/// Outcome of a precedence query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// A witness exists: the precedence relation holds.
    Holds,
    /// The full (complete) candidate space was exhausted: it does not hold.
    Fails,
    /// The search was cut short by a budget or an unsupported feature; no
    /// definite answer. Callers must treat this conservatively.
    ResourceLimit,
}

impl Verdict {
    /// Did the relation definitely hold?
    pub fn holds(self) -> bool {
        self == Verdict::Holds
    }

    /// Was a definite answer (either way) reached?
    pub fn definite(self) -> bool {
        self != Verdict::ResourceLimit
    }
}

/// Which relation is being decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainVariant {
    /// `≺` (Definition 2): single standard step.
    Standard,
    /// `≺c` (Definition 4, corrected — see DESIGN.md §4.1): single oblivious
    /// step, no requirement that the trigger be violated.
    Oblivious,
    /// `≺k,P` (Definition 14): k−1 oblivious steps, the null/P condition and
    /// the step-necessity conditions.
    Restricted(PosSet),
}

/// Node labels in the unification structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Label {
    /// Still unconstrained (an `I0`-level value).
    Free,
    /// A constant mentioned in the constraints.
    Const(Sym),
    /// The fresh null invented by step `.0` for one existential variable
    /// (`.0` is a globally unique created-null id).
    Created(u32),
}

/// Union-find over term nodes with label merging.
#[derive(Clone)]
struct Uf {
    parent: Vec<usize>,
    label: Vec<Label>,
}

impl Uf {
    fn new() -> Uf {
        Uf {
            parent: Vec::new(),
            label: Vec::new(),
        }
    }

    fn add(&mut self, label: Label) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        self.label.push(label);
        id
    }

    fn find(&self, mut x: usize) -> usize {
        while self.parent[x] != x {
            x = self.parent[x];
        }
        x
    }

    fn label_of(&self, x: usize) -> Label {
        self.label[self.find(x)]
    }

    /// Merge two classes; `false` when their labels are incompatible
    /// (distinct constants, distinct created nulls, or constant vs null).
    fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return true;
        }
        let merged = match (self.label[ra], self.label[rb]) {
            (Label::Free, l) | (l, Label::Free) => l,
            (Label::Const(x), Label::Const(y)) if x == y => Label::Const(x),
            _ => return false,
        };
        self.parent[ra] = rb;
        self.label[rb] = merged;
        true
    }
}

/// Where a body atom's image lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    /// The atom is part of the initial instance `I0`.
    I0,
    /// The atom is the image of head atom `atom` of chain step `step`.
    Head { step: usize, atom: usize },
}

/// Block labels for residual free variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockLabel {
    FreshConst,
    FreshNull,
    SigmaConst(Sym),
}

/// Base id for materialized created nulls, disjoint from fresh-null blocks.
const CREATED_BASE: u32 = 1 << 20;

struct ChainSearch<'a> {
    set: &'a ConstraintSet,
    seq: &'a [usize],
    k: usize,
    variant: ChainVariant,
    cfg: &'a PrecedenceConfig,
    base_uf: Uf,
    const_nodes: FxHashMap<Sym, usize>,
    /// `var_nodes[pos][v]`: node of universal variable `v` of chain entry
    /// `pos`.
    var_nodes: Vec<FxHashMap<Sym, usize>>,
    /// `created_nodes[step][y]`: node of the null created for existential
    /// `y` by step `step`.
    created_nodes: Vec<FxHashMap<Sym, usize>>,
    /// Materialized term of each created-null node id.
    created_term: FxHashMap<usize, Term>,
    /// Flattened body atoms of the whole chain: `(pos, atom_index)`.
    atoms: Vec<(usize, usize)>,
    sigma_consts: Vec<Sym>,
    budget: u64,
    found: bool,
    incomplete: bool,
}

impl<'a> ChainSearch<'a> {
    fn new(
        set: &'a ConstraintSet,
        seq: &'a [usize],
        variant: ChainVariant,
        cfg: &'a PrecedenceConfig,
    ) -> ChainSearch<'a> {
        let k = seq.len();
        let mut base_uf = Uf::new();
        let mut const_nodes = FxHashMap::default();
        let mut var_nodes: Vec<FxHashMap<Sym, usize>> = Vec::with_capacity(k);
        let mut created_nodes: Vec<FxHashMap<Sym, usize>> = Vec::with_capacity(k);
        let mut created_term = FxHashMap::default();
        let mut next_created = 0u32;
        for (pos, &ci) in seq.iter().enumerate() {
            let c = &set[ci];
            let mut vars = FxHashMap::default();
            for v in c.universals() {
                vars.insert(v, base_uf.add(Label::Free));
            }
            var_nodes.push(vars);
            let mut created = FxHashMap::default();
            if pos + 1 < k {
                if let Constraint::Tgd(t) = c {
                    for &y in t.existentials() {
                        let node = base_uf.add(Label::Created(next_created));
                        created_term.insert(node, Term::Null(CREATED_BASE + next_created));
                        next_created += 1;
                        created.insert(y, node);
                    }
                }
            }
            created_nodes.push(created);
            for a in c.body().iter().chain(c.head_atoms()) {
                for &t in a.terms() {
                    if let Term::Const(s) = t {
                        const_nodes
                            .entry(s)
                            .or_insert_with(|| base_uf.add(Label::Const(s)));
                    }
                }
            }
        }
        let mut atoms = Vec::new();
        for (pos, &ci) in seq.iter().enumerate() {
            for ai in 0..set[ci].body().len() {
                atoms.push((pos, ai));
            }
        }
        ChainSearch {
            set,
            seq,
            k,
            variant,
            cfg,
            base_uf,
            const_nodes,
            var_nodes,
            created_nodes,
            created_term,
            atoms,
            sigma_consts: set.constants(),
            budget: cfg.max_candidates,
            found: false,
            incomplete: false,
        }
    }

    /// Node of `t` as it appears in chain entry `pos` (head terms use the
    /// created-null nodes of their step).
    fn term_node(&self, pos: usize, t: Term) -> usize {
        match t {
            Term::Const(c) => self.const_nodes[&c],
            Term::Var(v) => match self.created_nodes[pos].get(&v) {
                Some(&n) => n,
                None => self.var_nodes[pos][&v],
            },
            Term::Null(_) => unreachable!("constraints contain no nulls"),
        }
    }

    fn done(&self) -> bool {
        self.found || self.incomplete
    }

    fn dfs(&mut self, idx: usize, uf: &Uf, srcs: &mut Vec<Src>) {
        if self.done() {
            return;
        }
        if idx == self.atoms.len() {
            self.leaf(uf, srcs);
            return;
        }
        let (pos, ai) = self.atoms[idx];
        let atom = self.set[self.seq[pos]].body()[ai].clone();
        // Head sources first: witnesses need the final constraint to consume
        // at least one head atom, so this order finds them sooner.
        for j in 0..pos.min(self.k - 1) {
            let head_len = self.set[self.seq[j]].head_atoms().len();
            for hi in 0..head_len {
                let h = self.set[self.seq[j]].head_atoms()[hi].clone();
                if h.pred() != atom.pred() || h.arity() != atom.arity() {
                    continue;
                }
                let mut uf2 = uf.clone();
                let ok =
                    atom.terms().iter().zip(h.terms()).all(|(&tb, &th)| {
                        uf2.union(self.term_node(pos, tb), self.term_node(j, th))
                    });
                if ok {
                    srcs.push(Src::Head { step: j, atom: hi });
                    self.dfs(idx + 1, &uf2, srcs);
                    srcs.pop();
                    if self.done() {
                        return;
                    }
                }
            }
        }
        srcs.push(Src::I0);
        self.dfs(idx + 1, uf, srcs);
        srcs.pop();
    }

    fn leaf(&mut self, uf: &Uf, srcs: &[Src]) {
        // Prune 1: with TGD-only steps the instance only grows, so the final
        // constraint can only become *newly* violated if at least one of its
        // body atoms is the image of a step's head atom. (This also rejects
        // final constraints with empty bodies, correctly: they can never be
        // newly violated by a growing instance.)
        let final_pos = self.k - 1;
        let final_has_head_source = self
            .atoms
            .iter()
            .zip(srcs)
            .any(|(&(pos, _), &s)| pos == final_pos && s != Src::I0);
        if !final_has_head_source {
            return;
        }
        // Prune 2: every step must *transitively feed* the final constraint
        // through head-source edges. A step j outside the final constraint's
        // dependency cone contributes nothing the skip-j run would miss, so
        // `αk(ak)` stays violated there and the necessity condition fails;
        // for k = 2 this coincides with prune 1. Sound for all variants.
        let mut feeds_final = vec![false; self.k];
        feeds_final[final_pos] = true;
        loop {
            let mut changed = false;
            for (&(pos, _), &s) in self.atoms.iter().zip(srcs) {
                if let Src::Head { step, .. } = s {
                    if feeds_final[pos] && !feeds_final[step] {
                        feeds_final[step] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        if !feeds_final.iter().all(|&b| b) {
            return;
        }
        // I0 atoms cannot contain chase-created nulls.
        for (&(pos, ai), &s) in self.atoms.iter().zip(srcs) {
            if s == Src::I0 {
                let atom = &self.set[self.seq[pos]].body()[ai];
                for &t in atom.terms() {
                    if matches!(uf.label_of(self.term_node(pos, t)), Label::Created(_)) {
                        return;
                    }
                }
            }
        }
        // Residual free variables, one representative per class.
        let mut free_roots: Vec<usize> = Vec::new();
        for pos in 0..self.k {
            for &n in self.var_nodes[pos].values() {
                let r = uf.find(n);
                if uf.label[r] == Label::Free && !free_roots.contains(&r) {
                    free_roots.push(r);
                }
            }
        }
        free_roots.sort_unstable();
        if free_roots.len() > self.cfg.max_free_vars {
            self.incomplete = true;
            return;
        }
        // Block label choices: fresh nulls only matter for the P-condition
        // of the Restricted variant (chain steps are TGDs, so instance
        // merges/failures never occur and satisfaction checks treat nulls
        // and constants alike).
        let mut choices = vec![BlockLabel::FreshConst];
        if matches!(self.variant, ChainVariant::Restricted(_)) {
            choices.push(BlockLabel::FreshNull);
        }
        for &c in &self.sigma_consts {
            choices.push(BlockLabel::SigmaConst(c));
        }
        let n = free_roots.len();
        let mut blocks = vec![0usize; n];
        self.enum_partitions(uf, srcs, &free_roots, &mut blocks, 0, 0, &choices);
    }

    /// Enumerate set partitions of the free roots as restricted-growth
    /// strings, trying a *new* block first so the all-distinct partition
    /// (the typical witness shape) is explored first.
    #[allow(clippy::too_many_arguments)]
    fn enum_partitions(
        &mut self,
        uf: &Uf,
        srcs: &[Src],
        free_roots: &[usize],
        blocks: &mut Vec<usize>,
        i: usize,
        max_used: usize,
        choices: &[BlockLabel],
    ) {
        if self.done() {
            return;
        }
        if i == free_roots.len() {
            let block_count = max_used;
            let mut labels = vec![choices[0]; block_count];
            self.enum_labels(uf, srcs, free_roots, blocks, &mut labels, 0, choices);
            return;
        }
        // New block first…
        blocks[i] = max_used;
        self.enum_partitions(uf, srcs, free_roots, blocks, i + 1, max_used + 1, choices);
        // …then each existing block.
        for b in 0..max_used {
            if self.done() {
                return;
            }
            blocks[i] = b;
            self.enum_partitions(uf, srcs, free_roots, blocks, i + 1, max_used, choices);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn enum_labels(
        &mut self,
        uf: &Uf,
        srcs: &[Src],
        free_roots: &[usize],
        blocks: &[usize],
        labels: &mut Vec<BlockLabel>,
        b: usize,
        choices: &[BlockLabel],
    ) {
        if self.done() {
            return;
        }
        if b == labels.len() {
            if self.budget == 0 {
                self.incomplete = true;
                return;
            }
            self.budget -= 1;
            if self.materialize_and_check(uf, srcs, free_roots, blocks, labels) {
                self.found = true;
            }
            return;
        }
        for &choice in choices {
            labels[b] = choice;
            self.enum_labels(uf, srcs, free_roots, blocks, labels, b + 1, choices);
            if self.done() {
                return;
            }
        }
    }

    fn materialize_and_check(
        &self,
        uf: &Uf,
        srcs: &[Src],
        free_roots: &[usize],
        blocks: &[usize],
        labels: &[BlockLabel],
    ) -> bool {
        // Term of each block.
        let block_term = |b: usize| match labels[b] {
            BlockLabel::FreshConst => Term::Const(Sym::new(&format!("$f{b}"))),
            BlockLabel::FreshNull => Term::Null(b as u32),
            BlockLabel::SigmaConst(c) => Term::Const(c),
        };
        let mut root_term: FxHashMap<usize, Term> = FxHashMap::default();
        for (i, &r) in free_roots.iter().enumerate() {
            root_term.insert(r, block_term(blocks[i]));
        }
        let term_of = |node: usize| -> Term {
            let r = uf.find(node);
            match uf.label[r] {
                Label::Const(c) => Term::Const(c),
                Label::Created(_) => self.created_term[&r],
                Label::Free => root_term[&r],
            }
        };
        // Initial instance.
        let mut i0 = Instance::new();
        for (&(pos, ai), &s) in self.atoms.iter().zip(srcs) {
            if s == Src::I0 {
                let atom = &self.set[self.seq[pos]].body()[ai];
                i0.insert(atom.map_terms(|t| term_of(self.term_node(pos, t))));
            }
        }
        // Assignments.
        let assignment = |pos: usize| -> Subst {
            let mut a = Subst::new();
            for (&v, &n) in &self.var_nodes[pos] {
                a.bind_var(v, term_of(n));
            }
            a
        };
        let step_assignments: Vec<Subst> = (0..self.k - 1).map(assignment).collect();
        let final_assignment = assignment(self.k - 1);
        let created_terms: Vec<Vec<(Sym, Term)>> = (0..self.k - 1)
            .map(|s| {
                self.created_nodes[s]
                    .iter()
                    .map(|(&y, &n)| (y, self.created_term[&n]))
                    .collect()
            })
            .collect();
        self.execute(&i0, &step_assignments, &final_assignment, &created_terms)
    }

    /// Run the chain for real and verify every side condition of the variant.
    fn execute(
        &self,
        i0: &Instance,
        step_assignments: &[Subst],
        final_assignment: &Subst,
        created_terms: &[Vec<(Sym, Term)>],
    ) -> bool {
        let final_c = &self.set[self.seq[self.k - 1]];
        // I0 ⊨ β(b).
        if !final_c.satisfied_with(i0, final_assignment) {
            return false;
        }
        // Standard variant: the first (only) step must be a standard step,
        // i.e. I0 ⊭ α(a).
        if self.variant == ChainVariant::Standard
            && self.set[self.seq[0]].satisfied_with(i0, &step_assignments[0])
        {
            return false;
        }
        // Execute the oblivious steps, optionally skipping one (for the
        // necessity conditions). Created nulls are instantiated identically
        // across runs. In the *main* run every step must genuinely apply
        // (`Ii−1 →*αi,ai Ii`). In a *skip* run, steps whose instantiated
        // body is no longer present are skipped gracefully (`Jl := Jl−1`) —
        // the reading of Definition 14's fifth bullet under which Example 15
        // and the Figure 2 constraint land on the paper's claimed hierarchy
        // levels (a strict reading would reject every genuinely chained
        // witness, collapsing `T[k]` to `T[2]`; see DESIGN.md §4).
        let run_chain = |skip: Option<usize>| -> Option<Instance> {
            let mut inst = i0.clone();
            for s in 0..self.k - 1 {
                if Some(s) == skip {
                    continue;
                }
                let tgd = self.set[self.seq[s]]
                    .as_tgd()
                    .expect("chain steps are gated to TGDs");
                let a = &step_assignments[s];
                let ground: Vec<Atom> = a.apply_atoms(tgd.body());
                if !ground.iter().all(|at| inst.contains(at)) {
                    skip?;
                    continue; // skip run: J_l := J_{l−1}
                }
                let mut nu = a.clone();
                for &(y, t) in &created_terms[s] {
                    nu.bind_var(y, t);
                }
                for h in tgd.head() {
                    inst.insert(nu.apply_atom(h));
                }
            }
            Some(inst)
        };
        let full = match run_chain(None) {
            Some(inst) => inst,
            None => return false,
        };
        // Ik−1 ⊭ β(b).
        if final_c.satisfied_with(&full, final_assignment) {
            return false;
        }
        if let ChainVariant::Restricted(p) = &self.variant {
            // Some labeled-null parameter in the head of β(b) whose I0
            // positions all lie in P. A null not occurring in I0 at all
            // (e.g. one created mid-chain) satisfies the condition
            // trivially: null-pos({n}, I0) = ∅ ⊆ P.
            let head_vals: Vec<Term> = match final_c {
                Constraint::Tgd(t) => t
                    .frontier()
                    .iter()
                    .filter_map(|&v| final_assignment.var(v))
                    .collect(),
                Constraint::Egd(e) => [
                    final_assignment.var(e.left()),
                    final_assignment.var(e.right()),
                ]
                .into_iter()
                .flatten()
                .collect(),
            };
            let null_ok = head_vals
                .iter()
                .any(|&t| t.is_null() && i0.positions_of(t).is_subset(p));
            if !null_ok {
                return false;
            }
            // Necessity: skipping any step must leave the chain defined and
            // β(b) satisfied.
            for skip in 0..self.k - 1 {
                match run_chain(Some(skip)) {
                    None => return false,
                    Some(j) => {
                        if !final_c.satisfied_with(&j, final_assignment) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }
}

/// Decide a chain relation over `seq` (constraint indices into `set`;
/// `seq.len() = k ≥ 2`).
pub fn chain(
    set: &ConstraintSet,
    seq: &[usize],
    variant: ChainVariant,
    cfg: &PrecedenceConfig,
) -> Verdict {
    assert!(seq.len() >= 2, "a chain needs at least two constraints");
    // EGD steps are out of scope for the static model (see module docs).
    if seq[..seq.len() - 1].iter().any(|&i| set[i].is_egd()) {
        return Verdict::ResourceLimit;
    }
    // Fast refutations.
    if let ChainVariant::Restricted(_) = &variant {
        if let Constraint::Tgd(t) = &set[seq[seq.len() - 1]] {
            if t.frontier().is_empty() {
                // No universally quantified parameter occurs in the head, so
                // no null can appear there: the P-condition cannot hold.
                return Verdict::Fails;
            }
        }
    }
    let mut search = ChainSearch::new(set, seq, variant, cfg);
    let base = search.base_uf.clone();
    let mut srcs = Vec::with_capacity(search.atoms.len());
    search.dfs(0, &base, &mut srcs);
    if search.found {
        Verdict::Holds
    } else if search.incomplete {
        Verdict::ResourceLimit
    } else {
        Verdict::Fails
    }
}

/// `α ≺ β` (Definition 2): firing `α` as a standard step can turn `β` from
/// satisfied to violated.
pub fn precedes(set: &ConstraintSet, a: usize, b: usize, cfg: &PrecedenceConfig) -> Verdict {
    chain(set, &[a, b], ChainVariant::Standard, cfg)
}

/// `α ≺c β` (Definition 4, corrected to use a genuinely oblivious step — see
/// DESIGN.md §4.1 and Example 7).
///
/// # Examples
///
/// ```
/// use chase_core::ConstraintSet;
/// use chase_termination::{precedes, precedes_c, PrecedenceConfig, Verdict};
///
/// // Example 4/7: α2 ⊀ α4 under the standard step, but α2 ≺c α4 — the
/// // oblivious edge that makes the set non-c-stratified.
/// let sigma = ConstraintSet::parse(
///     "R(X1) -> S(X1,X1)
///      S(X1,X2) -> T(X2,Z)
///      S(X1,X2) -> T(X1,X2), T(X2,X1)
///      T(X1,X2), T(X1,X3), T(X3,X1) -> R(X2)",
/// ).unwrap();
/// let cfg = PrecedenceConfig::default();
/// assert_eq!(precedes(&sigma, 1, 3, &cfg), Verdict::Fails);
/// assert_eq!(precedes_c(&sigma, 1, 3, &cfg), Verdict::Holds);
/// ```
pub fn precedes_c(set: &ConstraintSet, a: usize, b: usize, cfg: &PrecedenceConfig) -> Verdict {
    chain(set, &[a, b], ChainVariant::Oblivious, cfg)
}

/// `≺k,P(seq)` (Definition 14); `≺P` of Definition 10 is the case
/// `seq.len() == 2`.
pub fn precedes_k(
    set: &ConstraintSet,
    seq: &[usize],
    p: &PosSet,
    cfg: &PrecedenceConfig,
) -> Verdict {
    chain(set, seq, ChainVariant::Restricted(p.clone()), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::Position;

    fn cfg() -> PrecedenceConfig {
        PrecedenceConfig::default()
    }

    fn parse(text: &str) -> ConstraintSet {
        ConstraintSet::parse(text).unwrap()
    }

    #[test]
    fn example2_gamma_does_not_precede_itself() {
        // γ: a 2-cycle forces a 3-cycle; a 3-cycle is never a 2-cycle, so
        // γ ⊀ γ and γ ⊀c γ (Examples 2 and 6).
        let s = parse("E(X1,X2), E(X2,X1) -> E(X1,Y1), E(Y1,Y2), E(Y2,X1)");
        assert_eq!(precedes(&s, 0, 0, &cfg()), Verdict::Fails);
        assert_eq!(precedes_c(&s, 0, 0, &cfg()), Verdict::Fails);
    }

    #[test]
    fn simple_feeding_pair_precedes() {
        // α: S(x) → T(x), β: T(x) → U(x). Firing α puts a new T-fact in,
        // newly violating β.
        let s = parse("S(X) -> T(X)\nT(X) -> U(X)");
        assert_eq!(precedes(&s, 0, 1, &cfg()), Verdict::Holds);
        assert_eq!(precedes_c(&s, 0, 1, &cfg()), Verdict::Holds);
        // β's head U is never produced by... α's body S is not produced by β:
        assert_eq!(precedes(&s, 1, 0, &cfg()), Verdict::Fails);
    }

    #[test]
    fn example7_oblivious_gap() {
        // Example 4/7: α2 ⊀ α4 under the standard step, but α2 ≺c α4 under
        // the oblivious step — the edge that makes Σ non-c-stratified.
        let s = parse(
            "R(X1) -> S(X1,X1)\n\
             S(X1,X2) -> T(X2,Z)\n\
             S(X1,X2) -> T(X1,X2), T(X2,X1)\n\
             T(X1,X2), T(X1,X3), T(X3,X1) -> R(X2)",
        );
        assert_eq!(precedes(&s, 1, 3, &cfg()), Verdict::Fails, "α2 ⊀ α4");
        assert_eq!(precedes_c(&s, 1, 3, &cfg()), Verdict::Holds, "α2 ≺c α4");
    }

    #[test]
    fn intro_alpha2_precedes_itself() {
        // S(x) → ∃y E(x,y), S(y): the new S-fact newly violates the same
        // constraint.
        let s = parse("S(X) -> E(X,Y), S(Y)");
        assert_eq!(precedes(&s, 0, 0, &cfg()), Verdict::Holds);
        assert_eq!(precedes_c(&s, 0, 0, &cfg()), Verdict::Holds);
    }

    #[test]
    fn full_tgd_symmetric_closure_never_self_precedes() {
        // α5 of §3.7: T(x1,x2) → T(x2,x1). Its own firing adds the swapped
        // atom, which can only *satisfy* other instances of α5.
        let s = parse("T(X1,X2) -> T(X2,X1)");
        assert_eq!(precedes(&s, 0, 0, &cfg()), Verdict::Fails);
        assert_eq!(precedes_c(&s, 0, 0, &cfg()), Verdict::Fails);
        let p: PosSet = [Position::new("T", 0), Position::new("T", 1)]
            .into_iter()
            .collect();
        assert_eq!(precedes_k(&s, &[0, 0], &p, &cfg()), Verdict::Fails);
    }

    #[test]
    fn restricted_relation_needs_null_positions_in_p() {
        // Example 10's Σ: α1 full, α2 existential. With P = {E^1, E^2}:
        // α2 ≺P α1 (a created null flows into α1's head) but α1 ⊀P α1 —
        // Example 12's minimal system has the single edge (α2, α1).
        let s = parse(
            "S(X), E(X,Y) -> E(Y,X)\n\
             S(X), E(X,Y) -> E(Y,Z), E(Z,X)",
        );
        let p: PosSet = [Position::new("E", 0), Position::new("E", 1)]
            .into_iter()
            .collect();
        assert_eq!(precedes_k(&s, &[1, 0], &p, &cfg()), Verdict::Holds);
        assert_eq!(precedes_k(&s, &[0, 0], &p, &cfg()), Verdict::Fails);
        assert_eq!(precedes_k(&s, &[0, 1], &p, &cfg()), Verdict::Fails);
        assert_eq!(precedes_k(&s, &[1, 1], &p, &cfg()), Verdict::Fails);
    }

    #[test]
    fn restricted_relation_empty_p_still_sees_created_nulls() {
        // A null created by the step itself has null-pos(∅) ⊆ P for any P,
        // including the empty set.
        let s = parse("S(X) -> T(Y)\nT(X) -> U(X,Z)");
        let p = PosSet::new();
        assert_eq!(precedes_k(&s, &[0, 1], &p, &cfg()), Verdict::Holds);
    }

    #[test]
    fn example15_chain_length_tracks_arity() {
        // The Example 15 family: S(x_n), R(x1..xn) → ∃y R(y, x1..x_{n−1}).
        // Genuine firing chains have at most arity−1 steps (after that the
        // S-guarded last position holds a created null), so ≺k,∅ holds for
        // chains of up to that length and fails beyond.
        //
        // Arity 2 (the Figure 2 constraint): ≺2 holds, ≺3 fails.
        let s2 = parse("S(X2), R(X1,X2) -> R(Y,X1)");
        let p = PosSet::new();
        assert_eq!(precedes_k(&s2, &[0, 0], &p, &cfg()), Verdict::Holds);
        assert_eq!(precedes_k(&s2, &[0, 0, 0], &p, &cfg()), Verdict::Fails);
        // Arity 3: ≺3 holds, ≺4 fails.
        let s3 = parse("S(X3), R(X1,X2,X3) -> R(Y,X1,X2)");
        assert_eq!(precedes_k(&s3, &[0, 0], &p, &cfg()), Verdict::Holds);
        assert_eq!(precedes_k(&s3, &[0, 0, 0], &p, &cfg()), Verdict::Holds);
        assert_eq!(precedes_k(&s3, &[0, 0, 0, 0], &p, &cfg()), Verdict::Fails);
    }

    #[test]
    fn egd_steps_are_conservatively_unknown() {
        let s = parse("E(X,Y), E(X,Z) -> Y = Z\nE(X,Y) -> F(X,Y)");
        assert_eq!(precedes(&s, 0, 1, &cfg()), Verdict::ResourceLimit);
        // EGD as the *final* constraint is fully supported.
        assert!(precedes(&s, 1, 0, &cfg()).definite());
    }

    #[test]
    fn egd_as_final_constraint() {
        // Copying E into F can newly violate the key constraint on F.
        let s = parse("E(X,Y) -> F(X,Y)\nF(X,Y), F(X,Z) -> Y = Z");
        assert_eq!(precedes(&s, 0, 1, &cfg()), Verdict::Holds);
    }

    #[test]
    fn budget_exhaustion_reports_resource_limit() {
        let s = parse("S(X) -> E(X,Y), S(Y)");
        let tiny = PrecedenceConfig {
            max_candidates: 0,
            max_free_vars: 9,
        };
        assert_eq!(precedes(&s, 0, 0, &tiny), Verdict::ResourceLimit);
    }
}
