//! Affected positions (Definition 6, after Calì–Gottlob–Kifer).
//!
//! `aff(Σ)` over-approximates the set of positions in which a labeled null
//! *created during the chase* may ever occur: existential head positions are
//! affected, and a head position of a universal variable is affected when
//! every body occurrence of that variable is at an affected position.

use chase_core::{ConstraintSet, PosSet};

/// The affected positions `aff(Σ)` of the TGDs of `Σ` (least fixpoint).
pub fn affected_positions(set: &ConstraintSet) -> PosSet {
    let mut aff = PosSet::new();
    // Base: existential positions.
    for (_, tgd) in set.tgds() {
        for &y in tgd.existentials() {
            aff.extend(tgd.head_positions_of(y));
        }
    }
    // Induction: propagate universal variables whose body occurrences are
    // all affected.
    loop {
        let mut changed = false;
        for (_, tgd) in set.tgds() {
            for &x in tgd.frontier() {
                let body_pos = tgd.body_positions_of(x);
                debug_assert!(!body_pos.is_empty(), "frontier variable occurs in body");
                if body_pos.iter().all(|p| aff.contains(p)) {
                    for p in tgd.head_positions_of(x) {
                        if aff.insert(p) {
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            return aff;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::Position;

    fn aff(text: &str) -> PosSet {
        affected_positions(&ConstraintSet::parse(text).unwrap())
    }

    #[test]
    fn example8_only_r2_affected() {
        // β := R(x1,x2,x3), S(x2) → ∃y R(x2,y,x1) — Example 8: aff = {R^2}.
        let a = aff("R(X1,X2,X3), S(X2) -> R(X2,Y,X1)");
        assert_eq!(a.len(), 1);
        assert!(a.contains(&Position::new("R", 1)));
    }

    #[test]
    fn example10_both_edge_positions_affected() {
        // Example 10: aff(Σ) = {E^1, E^2}.
        let a = aff("S(X), E(X,Y) -> E(Y,X)\n\
             S(X), E(X,Y) -> E(Y,Z), E(Z,X)");
        assert_eq!(a.len(), 2);
        assert!(a.contains(&Position::new("E", 0)));
        assert!(a.contains(&Position::new("E", 1)));
    }

    #[test]
    fn propagation_requires_all_body_occurrences_affected() {
        // x2 occurs at E^2 (affected) and S^1 (not): head position of x2 is
        // not affected.
        let a = aff("E(X1,X2), S(X2) -> E(X2,Y)");
        assert_eq!(a.len(), 1);
        assert!(a.contains(&Position::new("E", 1)));
    }

    #[test]
    fn full_tgds_have_no_affected_positions() {
        assert!(aff("E(X,Y) -> E(Y,X)").is_empty());
    }

    #[test]
    fn transitive_propagation() {
        // Null born at T^1 flows T^1 → U^1 → V^1.
        let a = aff("S(X) -> T(Y)\n\
             T(X) -> U(X)\n\
             U(X) -> V(X)");
        assert_eq!(a.len(), 3);
        assert!(a.contains(&Position::new("T", 0)));
        assert!(a.contains(&Position::new("U", 0)));
        assert!(a.contains(&Position::new("V", 0)));
    }

    #[test]
    fn example19_affected_set() {
        // Example 19: aff(Σ) = {S^1, S^2, R^1, R^2}.
        let a = aff("R(X1,X2), S(X1,X2) -> S(X2,Y)\n\
             S(X1,X2), S(X3,X1) -> R(X2,X1)\n\
             T(X1,X2) -> S(Y,X2)");
        let expect: PosSet = [
            Position::new("S", 0),
            Position::new("S", 1),
            Position::new("R", 0),
            Position::new("R", 1),
        ]
        .into_iter()
        .collect();
        assert_eq!(a, expect);
    }
}
