#![warn(missing_docs)]

//! # chase-termination
//!
//! Every termination condition of *On Chase Termination Beyond
//! Stratification* (Meier, Schmidt, Lausen; VLDB 2009), from the classical
//! to the paper's contributions:
//!
//! | condition | paper | complexity | module |
//! |-----------|-------|------------|--------|
//! | weak acyclicity | Def. 1 | PTIME | [`depgraph`] |
//! | stratification | Defs. 2–3 | coNP | [`stratification`] |
//! | c-stratification | Defs. 4–5 | coNP | [`stratification`] |
//! | safety | Defs. 6–8 | PTIME | [`propgraph`] |
//! | safe restriction | §3.5 / \[18\] | coNP | [`hierarchy`] |
//! | inductive restriction | Def. 13 | coNP | [`hierarchy`] |
//! | T-hierarchy `T[k]` | Def. 16 | coNP | [`hierarchy`] |
//!
//! plus the data-dependent analyses of Section 4 ([`datadep`]) and a combined
//! [`report`].
//!
//! The coNP conditions are built on the precedence oracles `≺`, `≺c` and
//! `≺k,P` ([`precedence`]), which enumerate bounded candidate databases
//! exactly as in the paper's decidability proofs (Prop. 1/3). The oracles are
//! resource-bounded: on budget exhaustion they report
//! [`precedence::Verdict::ResourceLimit`], and every recognizer degrades
//! *soundly* (an unknown precedence edge is treated as present, an unknown
//! class membership as "not recognized" — we may under-approximate a class,
//! never over-approximate a termination guarantee).

pub mod affected;
pub mod chasegraph;
pub mod datadep;
pub mod depgraph;
pub mod graphs;
pub mod hierarchy;
pub mod precedence;
pub mod propgraph;
pub mod report;
pub mod restriction;
pub mod stratification;

pub use affected::affected_positions;
pub use chasegraph::{c_chase_graph, chase_graph, ChaseGraph};
pub use datadep::{
    data_dependent_terminates, instance_constraint, irrelevant_constraints, relevant_subset,
};
pub use depgraph::{dependency_graph, is_weakly_acyclic};
pub use hierarchy::{
    check, is_inductively_restricted, is_safely_restricted, part, t_level, Recognition,
};
pub use precedence::{precedes, precedes_c, precedes_k, PrecedenceConfig, Verdict};
pub use propgraph::{is_safe, null_rank_bound, propagation_graph};
pub use report::{analyze, AnalysisReport};
pub use restriction::{aff_cl, minimal_restriction_system, RestrictionSystem};
pub use stratification::{
    is_c_stratified, is_stratified, phase_schedule, stratified_order, PhaseSchedule,
};
