//! A combined analysis report over every termination condition — the
//! programmatic form of the paper's Figure 1 for one constraint set.

use crate::affected::affected_positions;
use crate::depgraph::is_weakly_acyclic;
use crate::hierarchy::{is_inductively_restricted, is_safely_restricted, t_level, Recognition};
use crate::precedence::PrecedenceConfig;
use crate::propgraph::{is_safe, null_rank_bound};
use crate::stratification::{is_c_stratified, is_stratified};
use chase_core::{ConstraintSet, PosSet};
use std::fmt;

/// Results of every recognizer on one constraint set.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Weak acyclicity (Definition 1).
    pub weakly_acyclic: bool,
    /// Safety (Definition 8).
    pub safe: bool,
    /// Stratification (Definition 3) — guarantees *some* terminating
    /// sequence (Theorem 1).
    pub stratified: Recognition,
    /// C-stratification (Definition 5) — guarantees every sequence
    /// terminates (Theorem 3).
    pub c_stratified: Recognition,
    /// Safe restriction (§3.5).
    pub safely_restricted: Recognition,
    /// Inductive restriction = T\[2\] (Definition 13).
    pub inductively_restricted: Recognition,
    /// Least hierarchy level in `2..=max_k`, if recognized.
    pub t_level: Option<usize>,
    /// Whether the level search was indefinite somewhere below `t_level`.
    pub t_level_unknown: bool,
    /// The `max_k` used for the level search.
    pub max_k: usize,
    /// Affected positions `aff(Σ)` (Definition 6).
    pub affected: PosSet,
    /// For safe sets: the propagation-graph rank bound on null nesting
    /// depth (Theorem 5's proof).
    pub null_rank_bound: Option<usize>,
}

impl AnalysisReport {
    /// Does *some* recognized condition guarantee termination of **every**
    /// chase sequence on every instance?
    pub fn guarantees_all_sequences(&self) -> bool {
        self.weakly_acyclic
            || self.safe
            || self.c_stratified.is_yes()
            || self.inductively_restricted.is_yes()
            || self.t_level.is_some()
    }

    /// Does some recognized condition guarantee at least one terminating
    /// sequence (includes plain stratification, Theorem 1)?
    pub fn guarantees_some_sequence(&self) -> bool {
        self.guarantees_all_sequences() || self.stratified.is_yes()
    }
}

/// Run every recognizer on `Σ`, searching the T-hierarchy up to `max_k`.
///
/// # Examples
///
/// ```
/// use chase_core::ConstraintSet;
/// use chase_termination::{analyze, PrecedenceConfig};
///
/// // The paper's Figure 2 constraint sits in T[3] \ T[2].
/// let sigma = ConstraintSet::parse("S(X2), E(X1,X2) -> E(Y,X1)").unwrap();
/// let report = analyze(&sigma, 4, &PrecedenceConfig::default());
/// assert!(!report.weakly_acyclic && !report.safe);
/// assert_eq!(report.t_level, Some(3));
/// assert!(report.guarantees_all_sequences());
/// ```
pub fn analyze(set: &ConstraintSet, max_k: usize, cfg: &PrecedenceConfig) -> AnalysisReport {
    let (level, level_unknown) = t_level(set, max_k, cfg);
    AnalysisReport {
        weakly_acyclic: is_weakly_acyclic(set),
        safe: is_safe(set),
        stratified: is_stratified(set, cfg),
        c_stratified: is_c_stratified(set, cfg),
        safely_restricted: is_safely_restricted(set, cfg),
        inductively_restricted: is_inductively_restricted(set, cfg),
        t_level: level,
        t_level_unknown: level_unknown,
        max_k,
        affected: affected_positions(set),
        null_rank_bound: null_rank_bound(set),
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "weakly acyclic:         {}",
            if self.weakly_acyclic { "yes" } else { "no" }
        )?;
        writeln!(
            f,
            "safe:                   {}",
            if self.safe { "yes" } else { "no" }
        )?;
        writeln!(f, "stratified:             {}", self.stratified)?;
        writeln!(f, "c-stratified:           {}", self.c_stratified)?;
        writeln!(f, "safely restricted:      {}", self.safely_restricted)?;
        writeln!(f, "inductively restricted: {}", self.inductively_restricted)?;
        match self.t_level {
            Some(k) => writeln!(f, "T-hierarchy level:      T[{k}]")?,
            None => writeln!(
                f,
                "T-hierarchy level:      not recognized up to T[{}]{}",
                self.max_k,
                if self.t_level_unknown {
                    " (indefinite)"
                } else {
                    ""
                }
            )?,
        }
        let aff: Vec<String> = self.affected.iter().map(|p| p.to_string()).collect();
        writeln!(f, "affected positions:     {{{}}}", aff.join(", "))?;
        if let Some(r) = self.null_rank_bound {
            writeln!(f, "null-depth rank bound:  {r} (Theorem 5)")?;
        }
        write!(
            f,
            "verdict:                {}",
            if self.guarantees_all_sequences() {
                "every chase sequence terminates (polynomial data complexity)"
            } else if self.guarantees_some_sequence() {
                "a terminating chase sequence exists and is constructible (Theorem 2)"
            } else {
                "no data-independent guarantee; consider data-dependent analysis (Section 4)"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PrecedenceConfig {
        PrecedenceConfig::default()
    }

    #[test]
    fn fig2_report() {
        let s = ConstraintSet::parse("S(X2), E(X1,X2) -> E(Y,X1)").unwrap();
        let r = analyze(&s, 4, &cfg());
        assert!(!r.weakly_acyclic);
        assert!(!r.safe);
        assert_eq!(r.t_level, Some(3));
        assert!(r.guarantees_all_sequences());
        let text = r.to_string();
        assert!(text.contains("T[3]"));
    }

    #[test]
    fn example4_report_only_guarantees_some_sequence() {
        let s = ConstraintSet::parse(
            "R(X1) -> S(X1,X1)\n\
             S(X1,X2) -> T(X2,Z)\n\
             S(X1,X2) -> T(X1,X2), T(X2,X1)\n\
             T(X1,X2), T(X1,X3), T(X3,X1) -> R(X2)",
        )
        .unwrap();
        let r = analyze(&s, 3, &cfg());
        assert!(!r.guarantees_all_sequences());
        assert!(r.guarantees_some_sequence());
        assert!(r.to_string().contains("Theorem 2"));
    }

    #[test]
    fn intro_alpha2_report_gives_no_guarantee() {
        let s = ConstraintSet::parse("S(X) -> E(X,Y), S(Y)").unwrap();
        let r = analyze(&s, 3, &cfg());
        assert!(!r.guarantees_some_sequence());
        assert!(r.to_string().contains("Section 4"));
    }
}
