//! The dependency graph and weak acyclicity (Definition 1, after Fagin et
//! al.).
//!
//! Nodes are the positions occurring in the TGDs of `Σ`; a normal edge
//! `π1 → π2` tracks a universal variable copied from body position `π1` to
//! head position `π2`, and a special edge `π1 *→ π2` records that a fresh
//! null is created at `π2` while the body binds a value at `π1`. `Σ` is
//! weakly acyclic iff no cycle passes through a special edge.

use crate::graphs::Digraph;
use chase_core::fx::FxHashMap;
use chase_core::{ConstraintSet, PosSet, Position};

/// A graph over database positions (dependency or propagation graph).
#[derive(Debug, Clone)]
pub struct PositionGraph {
    /// Node id → position, sorted ascending; node ids index this vector.
    pub positions: Vec<Position>,
    /// Inverse of `positions`.
    pub index: FxHashMap<Position, usize>,
    /// The underlying digraph; special edges are the paper's `∗`-edges.
    pub graph: Digraph,
}

impl PositionGraph {
    /// Build an edgeless position graph over the given node set.
    pub fn over(positions: PosSet) -> PositionGraph {
        let positions: Vec<Position> = positions.into_iter().collect();
        let index: FxHashMap<Position, usize> =
            positions.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let graph = Digraph::new(positions.len());
        PositionGraph {
            positions,
            index,
            graph,
        }
    }

    /// Add an edge between positions (both must be nodes).
    pub fn add_edge(&mut self, from: Position, to: Position, special: bool) {
        let f = self.index[&from];
        let t = self.index[&to];
        self.graph.add_edge(f, t, special);
    }

    /// Does the graph contain a cycle through a special edge?
    pub fn has_special_cycle(&self) -> bool {
        self.graph.has_special_cycle()
    }

    /// The rank of every position — the maximum number of special edges on
    /// any incoming path, the quantity the proof of Theorem 5 partitions
    /// positions by (`N0, …, Np`). `None` when a special cycle makes ranks
    /// infinite (i.e. the acyclicity condition of this graph fails).
    pub fn special_ranks(&self) -> Option<Vec<(Position, usize)>> {
        let ranks = self.graph.special_ranks()?;
        Some(self.positions.iter().copied().zip(ranks).collect())
    }

    /// Edges as position pairs `(from, to, special)`, sorted.
    pub fn edges(&self) -> Vec<(Position, Position, bool)> {
        self.graph
            .edges()
            .map(|(u, v, s)| (self.positions[u], self.positions[v], s))
            .collect()
    }

    /// DOT rendering in the style of the paper's Figure 3/6.
    pub fn to_dot(&self, name: &str) -> String {
        self.graph.to_dot(name, |v| self.positions[v].to_string())
    }
}

/// The dependency graph `dep(Σ)` (Definition 1). Only TGDs contribute.
pub fn dependency_graph(set: &ConstraintSet) -> PositionGraph {
    // Nodes: positions occurring in some TGD (body or head).
    let mut nodes = PosSet::new();
    for (_, tgd) in set.tgds() {
        nodes.extend(tgd.body_positions());
        nodes.extend(tgd.head_positions());
    }
    let mut g = PositionGraph::over(nodes);
    for (_, tgd) in set.tgds() {
        for &x in tgd.frontier() {
            for p1 in tgd.body_positions_of(x) {
                // Normal edges: x copied into each of its head positions.
                for p2 in tgd.head_positions_of(x) {
                    g.add_edge(p1, p2, false);
                }
                // Special edges: a fresh null is created at every
                // existential position while x is bound at p1.
                for &y in tgd.existentials() {
                    for p2 in tgd.head_positions_of(y) {
                        g.add_edge(p1, p2, true);
                    }
                }
            }
        }
    }
    g
}

/// Is `Σ` weakly acyclic (Definition 1)? Decidable in polynomial time.
pub fn is_weakly_acyclic(set: &ConstraintSet) -> bool {
    !dependency_graph(set).has_special_cycle()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> ConstraintSet {
        ConstraintSet::parse(text).unwrap()
    }

    #[test]
    fn copy_only_tgds_are_weakly_acyclic() {
        let s = parse("E(X,Y) -> E(Y,X)");
        assert!(is_weakly_acyclic(&s));
        let g = dependency_graph(&s);
        assert_eq!(g.positions.len(), 2);
        // E^1 → E^2 and E^2 → E^1, no special edges.
        assert_eq!(g.edges().len(), 2);
        assert!(g.edges().iter().all(|&(_, _, s)| !s));
    }

    #[test]
    fn intro_alpha2_is_not_weakly_acyclic() {
        // S(x) → ∃y E(x,y), S(y): special self-reachability through S^1.
        let s = parse("S(X) -> E(X,Y), S(Y)");
        assert!(!is_weakly_acyclic(&s));
    }

    #[test]
    fn fig9_travel_constraints_not_weakly_acyclic() {
        // Figure 3: self-loop fly^2 *→ fly^2 via α3.
        let s = parse(
            "fly(C1,C2,D) -> hasAirport(C1), hasAirport(C2)\n\
             rail(C1,C2,D) -> rail(C2,C1,D)\n\
             fly(C1,C2,D) -> fly(C2,C3,D2)",
        );
        assert!(!is_weakly_acyclic(&s));
        let g = dependency_graph(&s);
        let fly2 = Position::new("fly", 1);
        let f = g.index[&fly2];
        // The witness from Example 1: special edge fly^2 *→ fly^2... which
        // arises from α3 binding C2 at fly^2 and creating C3/D2 ... the
        // self-loop is fly^2 → fly^1 (copy) plus fly^2 *→ fly^2 (C3 fresh at
        // fly^2 while C2 at fly^2).
        assert!(g.graph.edges().any(|(u, v, s)| u == f && v == f && s));
    }

    #[test]
    fn example2_three_cycle_constraint_not_weakly_acyclic() {
        // γ from Example 2/3: stratified but not weakly acyclic.
        let s = parse("E(X1,X2), E(X2,X1) -> E(X1,Y1), E(Y1,Y2), E(Y2,X1)");
        assert!(!is_weakly_acyclic(&s));
    }

    #[test]
    fn egds_do_not_contribute() {
        let s = parse("E(X,Y), E(X,Z) -> Y = Z");
        let g = dependency_graph(&s);
        assert_eq!(g.positions.len(), 0);
        assert!(is_weakly_acyclic(&s));
    }

    #[test]
    fn data_exchange_copy_dependency_is_weakly_acyclic() {
        let s = parse("src(X,Y) -> dst(X,Y)\ndst(X,Y) -> link(X,Z)");
        assert!(is_weakly_acyclic(&s));
    }
}
