//! Stratification (Definition 3), c-stratification (Definition 5) and the
//! terminating-order construction of Theorem 2.
//!
//! A set is (c-)stratified when the constraints of every cycle of its
//! (c-)chase graph are weakly acyclic; following the paper's own algorithms
//! (Prop. 1, Thm. 2, Figs. 7/8) this is checked per non-trivial strongly
//! connected component (see DESIGN.md §4.3).
//!
//! The paper's corrected reading of stratification (Theorem 1/2): it does
//! **not** guarantee termination of every chase sequence (Example 4), but a
//! terminating sequence exists and can be constructed statically — chase the
//! strongly connected components of `G(Σ)` in topological order
//! ([`stratified_order`]), feeding `chase_engine::Strategy::Phased`.

use crate::chasegraph::{c_chase_graph, chase_graph, ChaseGraph};
use crate::depgraph::is_weakly_acyclic;
use crate::hierarchy::Recognition;
use crate::precedence::PrecedenceConfig;
use chase_core::ConstraintSet;

fn stratified_via(set: &ConstraintSet, g: &ChaseGraph) -> Recognition {
    for comp in g.graph.nontrivial_sccs() {
        if !is_weakly_acyclic(&set.subset(&comp)) {
            // A violating component is definite only when none of its edges
            // was added conservatively.
            let conservative = g
                .unknown_edges
                .iter()
                .any(|&(a, b)| comp.contains(&a) && comp.contains(&b));
            return if conservative {
                Recognition::Unknown
            } else {
                Recognition::No
            };
        }
    }
    // All components weakly acyclic. Conservative extra edges only merge
    // components, and weak acyclicity is closed under subsets, so a "yes"
    // here is sound even when the oracle gave up somewhere.
    Recognition::Yes
}

/// Is `Σ` stratified (Definition 3)?
///
/// Note (Theorem 1): stratification guarantees the existence of *some*
/// terminating chase sequence, not termination of every sequence.
pub fn is_stratified(set: &ConstraintSet, cfg: &PrecedenceConfig) -> Recognition {
    stratified_via(set, &chase_graph(set, cfg))
}

/// Is `Σ` c-stratified (Definition 5)? C-stratification guarantees
/// termination of **every** chase sequence in polynomial data complexity
/// (Theorem 3).
pub fn is_c_stratified(set: &ConstraintSet, cfg: &PrecedenceConfig) -> Recognition {
    stratified_via(set, &c_chase_graph(set, cfg))
}

/// The terminating chase order of Theorem 2: strongly connected components
/// of the chase graph `G(Σ)` in topological order, as phases of constraint
/// indices (trivial components become singleton phases).
///
/// For a stratified `Σ`, chasing these phases to completion in order
/// (e.g. with `chase_engine::Strategy::Phased`) terminates on every
/// instance, in polynomially many steps.
pub fn stratified_order(set: &ConstraintSet, cfg: &PrecedenceConfig) -> Vec<Vec<usize>> {
    chase_graph(set, cfg).graph.sccs_topological()
}

/// Phase metadata consumed by the stratum-scheduled executor
/// (`chase_engine::chase_parallel`): which constraint groups to chase in
/// which order, and whether that order carries Theorem 2's termination
/// guarantee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSchedule {
    /// Constraint-index groups in execution order. For a stratified set these
    /// are the chase-graph SCCs in topological order ([`stratified_order`]);
    /// otherwise a single phase containing every constraint.
    pub phases: Vec<Vec<usize>>,
    /// The stratification verdict behind the schedule. Only
    /// [`Recognition::Yes`] makes the phase order a Theorem 2 terminating
    /// order; `No`/`Unknown` schedules are the single-phase fallback and give
    /// no termination guarantee.
    pub stratified: Recognition,
}

impl PhaseSchedule {
    /// The trivial schedule: every constraint in one phase (what an
    /// unstratified set falls back to).
    pub fn single_phase(constraints: usize) -> PhaseSchedule {
        PhaseSchedule {
            phases: vec![(0..constraints).collect()],
            stratified: Recognition::No,
        }
    }

    /// Number of scheduled phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// True iff the schedule has no phases (empty constraint set).
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

/// Build the execution schedule for `Σ`: the Theorem 2 SCC-topological phase
/// order when `Σ` is recognizably stratified, and the single-phase fallback
/// otherwise (`No` *and* `Unknown` — an oracle giving up must not be treated
/// as a termination guarantee).
///
/// Either way the schedule covers every constraint exactly once, so running
/// its phases with `chase_engine::Strategy::Phased` (or the parallel
/// executor) preserves the "chase until satisfied" contract; stratification
/// only decides whether Theorem 2 additionally promises termination.
pub fn phase_schedule(set: &ConstraintSet, cfg: &PrecedenceConfig) -> PhaseSchedule {
    let stratified = is_stratified(set, cfg);
    if stratified == Recognition::Yes {
        PhaseSchedule {
            phases: stratified_order(set, cfg),
            stratified,
        }
    } else {
        PhaseSchedule {
            phases: vec![(0..set.len()).collect()],
            stratified,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PrecedenceConfig {
        PrecedenceConfig::default()
    }

    fn parse(text: &str) -> ConstraintSet {
        ConstraintSet::parse(text).unwrap()
    }

    fn example4() -> ConstraintSet {
        parse(
            "R(X1) -> S(X1,X1)\n\
             S(X1,X2) -> T(X2,Z)\n\
             S(X1,X2) -> T(X1,X2), T(X2,X1)\n\
             T(X1,X2), T(X1,X3), T(X3,X1) -> R(X2)",
        )
    }

    #[test]
    fn example3_gamma_is_stratified_but_not_weakly_acyclic() {
        let s = parse("E(X1,X2), E(X2,X1) -> E(X1,Y1), E(Y1,Y2), E(Y2,X1)");
        assert!(!is_weakly_acyclic(&s));
        assert_eq!(is_stratified(&s, &cfg()), Recognition::Yes);
        assert_eq!(is_c_stratified(&s, &cfg()), Recognition::Yes);
    }

    #[test]
    fn example4_is_stratified_but_not_c_stratified() {
        // The paper's counterexample to the original stratification claim.
        let s = example4();
        assert_eq!(is_stratified(&s, &cfg()), Recognition::Yes);
        assert_eq!(is_c_stratified(&s, &cfg()), Recognition::No);
    }

    #[test]
    fn weakly_acyclic_sets_are_stratified() {
        for text in [
            "E(X,Y) -> E(Y,X)",
            "S(X) -> E(X,Y)",
            "src(X,Y) -> dst(X,Y)\ndst(X,Y) -> link(X,Z)",
        ] {
            let s = parse(text);
            assert!(is_weakly_acyclic(&s));
            assert_eq!(is_stratified(&s, &cfg()), Recognition::Yes, "{text}");
            assert_eq!(is_c_stratified(&s, &cfg()), Recognition::Yes, "{text}");
        }
    }

    #[test]
    fn intro_alpha2_not_stratified() {
        // S(x) → ∃y E(x,y), S(y) self-precedes and is not weakly acyclic.
        let s = parse("S(X) -> E(X,Y), S(Y)");
        assert_eq!(is_stratified(&s, &cfg()), Recognition::No);
        assert_eq!(is_c_stratified(&s, &cfg()), Recognition::No);
    }

    #[test]
    fn example4_order_puts_cycle_before_alpha2() {
        // Example 5 / Theorem 2: the cycle {α1, α3, α4} must be chased
        // before α2 (α2 is a sink, so it comes last in topological order of
        // predecessors… precisely: the component {α1,α3,α4} precedes {α2}).
        let order = stratified_order(&example4(), &cfg());
        let pos_of = |ci: usize| order.iter().position(|ph| ph.contains(&ci)).unwrap();
        assert!(pos_of(0) < pos_of(1));
        assert_eq!(order.iter().map(Vec::len).sum::<usize>(), 4);
        // α1, α3, α4 form one phase.
        assert!(order.iter().any(|ph| ph == &vec![0, 2, 3]));
    }

    #[test]
    fn phase_schedule_uses_theorem2_order_when_stratified() {
        let s = example4();
        let sched = phase_schedule(&s, &cfg());
        assert_eq!(sched.stratified, Recognition::Yes);
        assert_eq!(sched.phases, stratified_order(&s, &cfg()));
        assert!(sched.len() >= 2);
    }

    #[test]
    fn phase_schedule_falls_back_to_single_phase() {
        // α2 is unstratified: one phase holding every constraint, no
        // termination claim.
        let s = parse("S(X) -> E(X,Y), S(Y)\nE(X,Y) -> T(Y)");
        let sched = phase_schedule(&s, &cfg());
        assert_ne!(sched.stratified, Recognition::Yes);
        assert_eq!(sched.phases, vec![vec![0, 1]]);
        assert_eq!(sched, {
            let mut single = PhaseSchedule::single_phase(2);
            single.stratified = sched.stratified;
            single
        });
    }

    #[test]
    fn phase_schedule_covers_every_constraint_once() {
        for text in [
            "S(X) -> E(X,Y)",
            "S(X) -> E(X,Y), S(Y)",
            "R(X1) -> S(X1,X1)\nS(X1,X2) -> T(X2,Z)",
        ] {
            let s = parse(text);
            let sched = phase_schedule(&s, &cfg());
            let mut seen: Vec<usize> = sched.phases.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..s.len()).collect::<Vec<_>>(), "{text}");
        }
    }

    #[test]
    fn thm4_safe_set_is_not_stratified() {
        // {α, β} from the proof of Theorem 4(c): safe but not stratified.
        let s = parse(
            "S(X2,X3), R(X1,X2,X3) -> R(X2,Y,X1)\n\
             R(X1,X2,X3) -> S(X1,X3)",
        );
        assert!(crate::propgraph::is_safe(&s));
        assert_eq!(is_stratified(&s, &cfg()), Recognition::No);
    }
}
