//! Inductive restriction, safe restriction and the T-hierarchy
//! (Definitions 13/16, Figures 7–8).
//!
//! * [`part`] implements the decomposition algorithm of Figure 7: recursively
//!   split `Σ` along the non-trivial strongly connected components of its
//!   minimal k-restriction system.
//! * `Σ` is *inductively restricted* iff every `Σ' ∈ part(Σ, 2)` is safe
//!   (Definition 13) — equivalently `Σ ∈ T[2]` (Proposition 5).
//! * [`check`] implements the membership algorithm of Figure 8, whose point
//!   (Section 3.7) is to test the *polynomial* safety condition before ever
//!   computing a costly k-restriction system; the `use_safety_shortcircuit`
//!   knob exists so the benchmark suite can ablate exactly that design
//!   choice.
//!
//! All recognizers return a three-valued [`Recognition`]: the precedence
//! oracles are resource-bounded, and a budgeted-out computation must never
//! masquerade as a definite answer.

use crate::precedence::PrecedenceConfig;
use crate::propgraph::is_safe;
use crate::restriction::minimal_restriction_system;
use chase_core::ConstraintSet;
use std::fmt;

/// Three-valued recognizer outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recognition {
    /// Definitely in the class.
    Yes,
    /// Definitely not in the class.
    No,
    /// The analysis hit a resource limit; no definite answer.
    Unknown,
}

impl Recognition {
    /// Is this a definite yes?
    pub fn is_yes(self) -> bool {
        self == Recognition::Yes
    }

    /// Three-valued conjunction: `No` dominates, then `Unknown`.
    pub fn and(self, other: Recognition) -> Recognition {
        use Recognition::*;
        match (self, other) {
            (No, _) | (_, No) => No,
            (Unknown, _) | (_, Unknown) => Unknown,
            (Yes, Yes) => Yes,
        }
    }

    /// From a boolean (definite) test.
    pub fn from_bool(b: bool) -> Recognition {
        if b {
            Recognition::Yes
        } else {
            Recognition::No
        }
    }
}

impl fmt::Display for Recognition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Recognition::Yes => write!(f, "yes"),
            Recognition::No => write!(f, "no"),
            Recognition::Unknown => write!(f, "unknown"),
        }
    }
}

/// The decomposition `part(Σ, k)` of Figure 7. Returns the leaf constraint
/// sets plus a flag that is `true` when any restriction system involved a
/// conservative (resource-limited) edge — in which case the decomposition
/// itself is only an over-approximation.
pub fn part(set: &ConstraintSet, k: usize, cfg: &PrecedenceConfig) -> (Vec<ConstraintSet>, bool) {
    let rs = minimal_restriction_system(set, k, cfg);
    let comps = rs.graph.nontrivial_sccs();
    let mut unknown = rs.unknown;
    // n == 0: no cyclic component at all.
    if comps.is_empty() {
        return (Vec::new(), unknown);
    }
    // n == 1.
    if comps.len() == 1 {
        let c1 = set.subset(&comps[0]);
        if c1.len() != set.len() {
            let (d, u) = part(&c1, k, cfg);
            return (d, unknown | u);
        }
        return (vec![c1], unknown);
    }
    // n > 1: recurse into every component.
    let mut d = Vec::new();
    for comp in comps {
        let (di, u) = part(&set.subset(&comp), k, cfg);
        d.extend(di);
        unknown |= u;
    }
    (d, unknown)
}

/// Is `Σ` *safely restricted* (\[18\], §3.5): every non-trivial strongly
/// connected component of the minimal 2-restriction system safe?
pub fn is_safely_restricted(set: &ConstraintSet, cfg: &PrecedenceConfig) -> Recognition {
    let rs = minimal_restriction_system(set, 2, cfg);
    if rs.unknown {
        return Recognition::Unknown;
    }
    Recognition::from_bool(
        rs.graph
            .nontrivial_sccs()
            .iter()
            .all(|comp| is_safe(&set.subset(comp))),
    )
}

/// Is `Σ` *inductively restricted* (Definition 13): every
/// `Σ' ∈ part(Σ, 2)` safe? Equivalent to `Σ ∈ T[2]` (Proposition 5).
pub fn is_inductively_restricted(set: &ConstraintSet, cfg: &PrecedenceConfig) -> Recognition {
    let (parts, unknown) = part(set, 2, cfg);
    if unknown {
        return Recognition::Unknown;
    }
    Recognition::from_bool(parts.iter().all(is_safe))
}

/// `sub(Σ, k)` of Figure 8, with the safety short-circuit optionally
/// disabled for ablation benchmarks.
fn sub(
    set: &ConstraintSet,
    k: usize,
    cfg: &PrecedenceConfig,
    use_safety_shortcircuit: bool,
) -> Recognition {
    if use_safety_shortcircuit && is_safe(set) {
        return Recognition::Yes;
    }
    let rs = minimal_restriction_system(set, k, cfg);
    let comps = rs.graph.nontrivial_sccs();
    if comps.is_empty() {
        // Figure 8, n == 0: an acyclic restriction system means
        // `part(Σ, k) = ∅`, and Definition 16 is vacuously satisfied.
        // Conservative extra edges can only *add* components, so an empty
        // component list is definite even under a resource limit.
        return Recognition::Yes;
    }
    if rs.unknown {
        // The decomposition itself is unreliable: give no guarantee.
        return Recognition::Unknown;
    }
    if comps.len() == 1 {
        let c1 = set.subset(&comps[0]);
        if c1.len() == set.len() {
            return Recognition::No;
        }
        return check_inner(&c1, k, cfg, use_safety_shortcircuit);
    }
    let mut acc = Recognition::Yes;
    for comp in comps {
        acc = acc.and(check_inner(
            &set.subset(&comp),
            k,
            cfg,
            use_safety_shortcircuit,
        ));
        if acc == Recognition::No {
            return Recognition::No;
        }
    }
    acc
}

fn check_inner(
    set: &ConstraintSet,
    k: usize,
    cfg: &PrecedenceConfig,
    use_safety_shortcircuit: bool,
) -> Recognition {
    let mut saw_unknown = false;
    for i in (2..=k).rev() {
        match sub(set, i, cfg, use_safety_shortcircuit) {
            Recognition::Yes => return Recognition::Yes,
            Recognition::Unknown => saw_unknown = true,
            Recognition::No => {}
        }
    }
    if saw_unknown {
        Recognition::Unknown
    } else {
        Recognition::No
    }
}

/// `check(Σ, k)` of Figure 8: decides membership in `T[k]`
/// (Proposition 6).
pub fn check(set: &ConstraintSet, k: usize, cfg: &PrecedenceConfig) -> Recognition {
    assert!(k >= 2, "the T-hierarchy starts at T[2]");
    check_inner(set, k, cfg, true)
}

/// `check` with the Figure 8 safety short-circuit disabled — every
/// membership test computes restriction systems even when the polynomial
/// safety test would settle it. Exists purely for the §3.7 ablation
/// benchmark.
pub fn check_without_safety_shortcircuit(
    set: &ConstraintSet,
    k: usize,
    cfg: &PrecedenceConfig,
) -> Recognition {
    assert!(k >= 2, "the T-hierarchy starts at T[2]");
    check_inner(set, k, cfg, false)
}

/// The smallest hierarchy level admitting `Σ`, searched up to `max_k`.
///
/// Returns `(Some(k), _)` for the least `k ∈ [2, max_k]` with `Σ ∈ T[k]`;
/// the flag reports whether any level's test was indefinite (in which case
/// `None` means "not recognized up to `max_k`", not a proof of absence).
pub fn t_level(set: &ConstraintSet, max_k: usize, cfg: &PrecedenceConfig) -> (Option<usize>, bool) {
    let mut saw_unknown = false;
    for k in 2..=max_k {
        match sub(set, k, cfg, true) {
            Recognition::Yes => return (Some(k), saw_unknown),
            Recognition::Unknown => saw_unknown = true,
            Recognition::No => {}
        }
    }
    (None, saw_unknown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stratification::is_stratified;

    fn cfg() -> PrecedenceConfig {
        PrecedenceConfig::default()
    }

    fn parse(text: &str) -> ConstraintSet {
        ConstraintSet::parse(text).unwrap()
    }

    #[test]
    fn example14_sigma_prime_is_inductively_restricted() {
        // Σ' of Examples 13/14: neither safe, nor stratified, nor safely
        // restricted — but part(Σ', 2) = ∅, so inductively restricted.
        let s = parse(
            "S(X), E(X,Y) -> E(Y,X)\n\
             S(X), E(X,Y) -> E(Y,Z), E(Z,X)\n\
             -> S(X), E(X,Y)",
        );
        assert!(!is_safe(&s));
        assert_eq!(is_stratified(&s, &cfg()), Recognition::No);
        assert_eq!(is_safely_restricted(&s, &cfg()), Recognition::No);
        let (parts, unknown) = part(&s, 2, &cfg());
        assert!(!unknown);
        assert!(parts.is_empty(), "part(Σ', 2) = ∅ (Example 14)");
        assert_eq!(is_inductively_restricted(&s, &cfg()), Recognition::Yes);
        assert_eq!(check(&s, 2, &cfg()), Recognition::Yes, "Σ' ∈ T[2]");
    }

    #[test]
    fn example10_sigma_is_safely_restricted() {
        // Σ = {α1, α2}: minimal 2-restriction system has no SCC.
        let s = parse(
            "S(X), E(X,Y) -> E(Y,X)\n\
             S(X), E(X,Y) -> E(Y,Z), E(Z,X)",
        );
        assert!(!is_safe(&s));
        assert_eq!(is_safely_restricted(&s, &cfg()), Recognition::Yes);
        assert_eq!(is_inductively_restricted(&s, &cfg()), Recognition::Yes);
    }

    #[test]
    fn safe_sets_are_inductively_restricted() {
        for text in [
            "R(X1,X2,X3), S(X2) -> R(X2,Y,X1)",
            "E(X,Y) -> E(Y,X)",
            "S(X) -> E(X,Y)",
        ] {
            let s = parse(text);
            assert!(is_safe(&s), "{text}");
            assert_eq!(
                is_inductively_restricted(&s, &cfg()),
                Recognition::Yes,
                "{text}"
            );
            assert_eq!(check(&s, 2, &cfg()), Recognition::Yes, "{text}");
        }
    }

    #[test]
    fn example4_stratified_but_not_inductively_restricted() {
        // Proposition 2, bullet two.
        let s = parse(
            "R(X1) -> S(X1,X1)\n\
             S(X1,X2) -> T(X2,Z)\n\
             S(X1,X2) -> T(X1,X2), T(X2,X1)\n\
             T(X1,X2), T(X1,X3), T(X3,X1) -> R(X2)",
        );
        assert_eq!(is_stratified(&s, &cfg()), Recognition::Yes);
        assert_eq!(is_inductively_restricted(&s, &cfg()), Recognition::No);
    }

    #[test]
    fn fig2_constraint_sits_at_t3() {
        // The paper's headline example: Σ from Figure 2 is in T[3] \ T[2].
        let s = parse("S(X2), E(X1,X2) -> E(Y,X1)");
        assert_eq!(check(&s, 2, &cfg()), Recognition::No);
        assert_eq!(check(&s, 3, &cfg()), Recognition::Yes);
        assert_eq!(t_level(&s, 5, &cfg()), (Some(3), false));
        // T[3] ⊆ T[4] (Proposition 5).
        assert_eq!(check(&s, 4, &cfg()), Recognition::Yes);
    }

    #[test]
    fn sigma_arity3_sits_at_t4() {
        // The next level of the Example 15 family.
        let s = parse("S(X3), R(X1,X2,X3) -> R(Y,X1,X2)");
        assert_eq!(check(&s, 3, &cfg()), Recognition::No);
        assert_eq!(check(&s, 4, &cfg()), Recognition::Yes);
        assert_eq!(t_level(&s, 6, &cfg()), (Some(4), false));
    }

    #[test]
    fn section37_sigma_double_prime_in_t2() {
        // Σ'' of §3.7: Σ' plus α4: E(x1,x2) → T(x1,x2) and
        // α5: T(x1,x2) → T(x2,x1). check avoids restriction systems for the
        // safe tail and still lands in T[2].
        let s = parse(
            "S(X), E(X,Y) -> E(Y,X)\n\
             S(X), E(X,Y) -> E(Y,Z), E(Z,X)\n\
             -> S(X), E(X,Y)\n\
             E(X1,X2) -> T(X1,X2)\n\
             T(X1,X2) -> T(X2,X1)",
        );
        assert!(!is_safe(&s));
        assert_eq!(check(&s, 2, &cfg()), Recognition::Yes);
        assert_eq!(
            check_without_safety_shortcircuit(&s, 2, &cfg()),
            Recognition::Yes,
            "ablated variant must agree"
        );
    }

    #[test]
    fn inductive_restriction_coincides_with_t2() {
        // Proposition 5, bullet one, across a mixed corpus.
        for text in [
            "S(X), E(X,Y) -> E(Y,X)\nS(X), E(X,Y) -> E(Y,Z), E(Z,X)\n-> S(X), E(X,Y)",
            "S(X2), E(X1,X2) -> E(Y,X1)",
            "S(X) -> E(X,Y), S(Y)",
            "E(X,Y) -> E(Y,X)",
            "R(X1,X2,X3), S(X2) -> R(X2,Y,X1)",
            "R(X1) -> S(X1,X1)\nS(X1,X2) -> T(X2,Z)\nS(X1,X2) -> T(X1,X2), T(X2,X1)\nT(X1,X2), T(X1,X3), T(X3,X1) -> R(X2)",
        ] {
            let s = parse(text);
            assert_eq!(
                is_inductively_restricted(&s, &cfg()),
                check(&s, 2, &cfg()),
                "Def. 13 vs Fig. 8 disagree on {text}"
            );
        }
    }

    #[test]
    fn intro_alpha2_outside_the_hierarchy() {
        let s = parse("S(X) -> E(X,Y), S(Y)");
        for k in 2..=4 {
            assert_eq!(check(&s, k, &cfg()), Recognition::No, "T[{k}]");
        }
    }

    #[test]
    fn recognition_conjunction() {
        use Recognition::*;
        assert_eq!(Yes.and(Yes), Yes);
        assert_eq!(Yes.and(No), No);
        assert_eq!(Unknown.and(No), No);
        assert_eq!(Unknown.and(Yes), Unknown);
    }
}
