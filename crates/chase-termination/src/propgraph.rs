//! The propagation graph and safety (Definitions 7–8).
//!
//! The propagation graph restricts the dependency graph to the *flow of
//! labeled nulls*: its nodes are the affected positions, and a TGD
//! contributes edges from a body position `π1` of a universal variable `x`
//! **only when every body occurrence of `x` is affected** — otherwise `x` can
//! never be bound to a chase-created null and the firing cannot cascade.
//! `Σ` is safe iff the propagation graph has no cycle through a special edge
//! (Theorem 4: safety strictly generalizes weak acyclicity).

use crate::affected::affected_positions;
use crate::depgraph::PositionGraph;
use chase_core::ConstraintSet;

/// The propagation graph `prop(Σ)` over `aff(Σ)` (Definition 7).
pub fn propagation_graph(set: &ConstraintSet) -> PositionGraph {
    let aff = affected_positions(set);
    let mut g = PositionGraph::over(aff.clone());
    for (_, tgd) in set.tgds() {
        for &x in tgd.frontier() {
            let body_pos = tgd.body_positions_of(x);
            if body_pos.is_empty() || !body_pos.iter().all(|p| aff.contains(p)) {
                continue; // x can never carry a chase-created null
            }
            for p1 in body_pos {
                for p2 in tgd.head_positions_of(x) {
                    debug_assert!(
                        aff.contains(&p2),
                        "Def. 6 makes head positions of fully-affected variables affected"
                    );
                    g.add_edge(p1, p2, false);
                }
                for &y in tgd.existentials() {
                    for p2 in tgd.head_positions_of(y) {
                        g.add_edge(p1, p2, true);
                    }
                }
            }
        }
    }
    g
}

/// Is `Σ` safe (Definition 8)? Decidable in polynomial time.
pub fn is_safe(set: &ConstraintSet) -> bool {
    !propagation_graph(set).has_special_cycle()
}

/// For a safe `Σ`: the maximum propagation-graph rank `r` (Theorem 5's
/// proof bounds the nesting depth of chase-created nulls by it). `None`
/// when `Σ` is not safe.
pub fn null_rank_bound(set: &ConstraintSet) -> Option<usize> {
    let ranks = propagation_graph(set).special_ranks()?;
    Some(ranks.into_iter().map(|(_, r)| r).max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::{dependency_graph, is_weakly_acyclic};
    use chase_core::PosSet;

    fn parse(text: &str) -> ConstraintSet {
        ConstraintSet::parse(text).unwrap()
    }

    #[test]
    fn example9_safe_but_not_weakly_acyclic() {
        // β from Examples 8/9 and Figure 6: dependency graph has a special
        // cycle, propagation graph has no edges at all.
        let s = parse("R(X1,X2,X3), S(X2) -> R(X2,Y,X1)");
        assert!(!is_weakly_acyclic(&s));
        assert!(is_safe(&s));
        let g = propagation_graph(&s);
        assert_eq!(g.positions.len(), 1, "only R^2 is affected");
        assert_eq!(g.edges().len(), 0, "Figure 6 (right): no edges");
    }

    #[test]
    fn theorem4_prop_is_subgraph_of_dep() {
        for text in [
            "R(X1,X2,X3), S(X2) -> R(X2,Y,X1)",
            "S(X), E(X,Y) -> E(Y,X)\nS(X), E(X,Y) -> E(Y,Z), E(Z,X)",
            "S(X) -> E(X,Y), S(Y)",
            "E(X1,X2), E(X2,X1) -> E(X1,Y1), E(Y1,Y2), E(Y2,X1)",
        ] {
            let s = parse(text);
            let dep = dependency_graph(&s);
            let prop = propagation_graph(&s);
            let dep_nodes: PosSet = dep.positions.iter().copied().collect();
            for p in &prop.positions {
                assert!(dep_nodes.contains(p), "{p} not a dep node for {text}");
            }
            for (u, v, special) in prop.edges() {
                assert!(
                    dep.edges().contains(&(u, v, special)),
                    "edge {u}→{v} (special={special}) missing in dep graph for {text}"
                );
            }
        }
    }

    #[test]
    fn theorem4_weakly_acyclic_implies_safe() {
        for text in [
            "E(X,Y) -> E(Y,X)",
            "src(X,Y) -> dst(X,Y)\ndst(X,Y) -> link(X,Z)",
            "S(X) -> E(X,Y)",
        ] {
            let s = parse(text);
            assert!(is_weakly_acyclic(&s));
            assert!(is_safe(&s), "WA set must be safe: {text}");
        }
    }

    #[test]
    fn theorem4_gamma_stratified_but_not_safe() {
        // γ (Example 2): both T positions affected, so prop = dep, which has
        // a special cycle.
        let s = parse("T(X1,X2), T(X2,X1) -> T(X1,Y1), T(Y1,Y2), T(Y2,X1)");
        assert!(!is_safe(&s));
    }

    #[test]
    fn intro_alpha2_not_safe() {
        let s = parse("S(X) -> E(X,Y), S(Y)");
        assert!(!is_safe(&s));
    }

    #[test]
    fn example10_not_safe() {
        let s = parse("S(X), E(X,Y) -> E(Y,X)\nS(X), E(X,Y) -> E(Y,Z), E(Z,X)");
        assert!(!is_safe(&s));
    }

    #[test]
    fn rank_bound_for_safe_sets() {
        // β (Ex. 8/9): the propagation graph is edgeless, so every rank is 0.
        let s = parse("R(X1,X2,X3), S(X2) -> R(X2,Y,X1)");
        assert_eq!(null_rank_bound(&s), Some(0));
        // A two-stage cascade: nulls born at T^1 (rank 0, no incoming
        // propagation edge — S^1 is unaffected) flow into the creation of
        // deeper nulls at U^2 (rank 1).
        let s = parse("S(X) -> T(Y)\nT(X) -> U(X,Z)");
        assert_eq!(null_rank_bound(&s), Some(1));
        // Unsafe sets have no bound.
        let s = parse("S(X) -> E(X,Y), S(Y)");
        assert_eq!(null_rank_bound(&s), None);
    }

    #[test]
    fn fig2_constraint_not_safe() {
        // Σ from Figure 2: S(x2), E(x1,x2) → ∃y E(y,x1).
        let s = parse("S(X2), E(X1,X2) -> E(Y,X1)");
        assert!(!is_safe(&s));
    }
}
