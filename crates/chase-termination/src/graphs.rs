//! Small directed-graph toolkit: graphs with *special* edges, strongly
//! connected components (iterative Tarjan), special-cycle detection and DOT
//! export.
//!
//! Both graph families of the paper reduce to these primitives:
//! dependency/propagation graphs are position graphs whose weak-acyclicity /
//! safety test is "no cycle through a special edge", and chase graphs /
//! restriction systems are constraint graphs analyzed via their strongly
//! connected components.

use std::collections::BTreeSet;

/// A directed graph over nodes `0..n` whose edges carry a `special` flag.
///
/// Parallel edges collapse (an edge is at most normal + special); self-loops
/// are allowed and count as cycles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Digraph {
    n: usize,
    edges: BTreeSet<(usize, usize, bool)>,
}

impl Digraph {
    /// Graph with `n` isolated nodes.
    pub fn new(n: usize) -> Digraph {
        Digraph {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Add an edge; `special = true` marks the paper's `∗`-edges.
    pub fn add_edge(&mut self, from: usize, to: usize, special: bool) {
        assert!(from < self.n && to < self.n, "edge endpoint out of range");
        self.edges.insert((from, to, special));
    }

    /// Is there an edge `from → to` (of either kind)?
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.edges.contains(&(from, to, false)) || self.edges.contains(&(from, to, true))
    }

    /// All edges, sorted.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, bool)> + '_ {
        self.edges.iter().copied()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Successors of `v` (deduplicated over the special flag).
    pub fn successors(&self, v: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .edges
            .range((v, 0, false)..(v + 1, 0, false))
            .map(|&(_, t, _)| t)
            .collect();
        out.dedup();
        out
    }

    /// Strongly connected components, via iterative Tarjan.
    ///
    /// Components are returned in **reverse topological order** of the
    /// condensation (Tarjan's natural output order): if component `A` has an
    /// edge into component `B`, then `B` appears before `A`.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        #[derive(Clone)]
        struct Frame {
            v: usize,
            child: usize,
        }
        let adj: Vec<Vec<usize>> = (0..self.n).map(|v| self.successors(v)).collect();
        const UNSET: usize = usize::MAX;
        let mut index = vec![UNSET; self.n];
        let mut low = vec![UNSET; self.n];
        let mut on_stack = vec![false; self.n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut out: Vec<Vec<usize>> = Vec::new();

        for root in 0..self.n {
            if index[root] != UNSET {
                continue;
            }
            let mut frames = vec![Frame { v: root, child: 0 }];
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;

            while let Some(frame) = frames.last_mut() {
                let v = frame.v;
                if frame.child < adj[v].len() {
                    let w = adj[v][frame.child];
                    frame.child += 1;
                    if index[w] == UNSET {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push(Frame { v: w, child: 0 });
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        out.push(comp);
                    }
                    frames.pop();
                    if let Some(parent) = frames.last() {
                        let pv = parent.v;
                        low[pv] = low[pv].min(low[v]);
                    }
                }
            }
        }
        out
    }

    /// Strongly connected components in **topological order** of the
    /// condensation.
    pub fn sccs_topological(&self) -> Vec<Vec<usize>> {
        let mut sccs = self.sccs();
        sccs.reverse();
        sccs
    }

    /// The *non-trivial* SCCs: components containing at least one edge
    /// (size ≥ 2, or a single node with a self-loop). These are exactly the
    /// unions of cycles, which is what the paper's `part`/`check` algorithms
    /// recurse on.
    pub fn nontrivial_sccs(&self) -> Vec<Vec<usize>> {
        self.sccs_topological()
            .into_iter()
            .filter(|comp| comp.len() > 1 || self.has_edge(comp[0], comp[0]))
            .collect()
    }

    /// Is there a cycle through a special edge — i.e. a special edge both of
    /// whose endpoints lie in the same SCC? (The weak-acyclicity / safety
    /// criterion.)
    pub fn has_special_cycle(&self) -> bool {
        let mut comp_of = vec![usize::MAX; self.n];
        for (ci, comp) in self.sccs().iter().enumerate() {
            for &v in comp {
                comp_of[v] = ci;
            }
        }
        self.edges
            .iter()
            .any(|&(u, v, special)| special && comp_of[u] == comp_of[v])
    }

    /// The *rank* of every node: the maximum number of special edges on any
    /// incoming path (the quantity bounding null depth in the proof of
    /// Theorem 5). `None` when a special cycle makes some rank infinite.
    ///
    /// Nodes of one strongly connected component share a rank (normal
    /// intra-component edges do not increase it; special intra-component
    /// edges are exactly the special cycles that make ranks undefined).
    pub fn special_ranks(&self) -> Option<Vec<usize>> {
        if self.has_special_cycle() {
            return None;
        }
        let sccs = self.sccs_topological();
        let mut comp_of = vec![usize::MAX; self.n];
        for (ci, comp) in sccs.iter().enumerate() {
            for &v in comp {
                comp_of[v] = ci;
            }
        }
        // Relax cross-component edges with sources in topological order;
        // every edge into a later component is seen after its source
        // component's rank is final.
        let mut comp_rank = vec![0usize; sccs.len()];
        for ci in 0..sccs.len() {
            for &(u, v, special) in &self.edges {
                let (cu, cv) = (comp_of[u], comp_of[v]);
                if cu == ci && cv != ci {
                    debug_assert!(cv > ci, "edges respect topological order");
                    comp_rank[cv] = comp_rank[cv].max(comp_rank[ci] + usize::from(special));
                }
            }
        }
        Some((0..self.n).map(|v| comp_rank[comp_of[v]]).collect())
    }

    /// Nodes reachable from `start` (including `start`).
    pub fn reachable_from(&self, start: usize) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        let mut work = vec![start];
        seen[start] = true;
        while let Some(v) = work.pop() {
            for w in self.successors(v) {
                if !seen[w] {
                    seen[w] = true;
                    work.push(w);
                }
            }
        }
        seen
    }

    /// DOT rendering with a caller-supplied node labeler. Special edges are
    /// drawn dashed with a `*` label, as in the paper's figures.
    pub fn to_dot(&self, name: &str, label: impl Fn(usize) -> String) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        for v in 0..self.n {
            let _ = writeln!(out, "  n{v} [label=\"{}\"];", label(v));
        }
        for &(u, v, special) in &self.edges {
            if special {
                let _ = writeln!(out, "  n{u} -> n{v} [style=dashed, label=\"*\"];");
            } else {
                let _ = writeln!(out, "  n{u} -> n{v};");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sccs_of_a_cycle() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1, false);
        g.add_edge(1, 2, false);
        g.add_edge(2, 0, false);
        g.add_edge(2, 3, false);
        let sccs = g.sccs_topological();
        assert_eq!(sccs, vec![vec![0, 1, 2], vec![3]]);
        assert_eq!(g.nontrivial_sccs(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn self_loop_is_nontrivial() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 0, false);
        assert_eq!(g.nontrivial_sccs(), vec![vec![0]]);
    }

    #[test]
    fn special_cycle_detection() {
        let mut g = Digraph::new(3);
        g.add_edge(0, 1, false);
        g.add_edge(1, 0, true);
        assert!(g.has_special_cycle());

        let mut h = Digraph::new(3);
        h.add_edge(0, 1, true); // special but acyclic
        h.add_edge(1, 2, false);
        assert!(!h.has_special_cycle());

        let mut s = Digraph::new(1);
        s.add_edge(0, 0, true); // special self-loop
        assert!(s.has_special_cycle());
    }

    #[test]
    fn topological_order_of_condensation() {
        // 0 → 1 ⇄ 2 → 3: condensation order must list {0} before {1,2}
        // before {3}.
        let mut g = Digraph::new(4);
        g.add_edge(0, 1, false);
        g.add_edge(1, 2, false);
        g.add_edge(2, 1, false);
        g.add_edge(2, 3, false);
        assert_eq!(g.sccs_topological(), vec![vec![0], vec![1, 2], vec![3]]);
    }

    #[test]
    fn reachability() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1, false);
        g.add_edge(1, 2, true);
        let r = g.reachable_from(0);
        assert_eq!(r, vec![true, true, true, false]);
    }

    #[test]
    fn parallel_normal_and_special_edges_coexist() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 1, false);
        g.add_edge(0, 1, true);
        g.add_edge(0, 1, true); // duplicate collapses
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn special_ranks_on_a_chain() {
        // 0 → 1 *→ 2 → 3 *→ 4: ranks 0,0,1,1,2.
        let mut g = Digraph::new(5);
        g.add_edge(0, 1, false);
        g.add_edge(1, 2, true);
        g.add_edge(2, 3, false);
        g.add_edge(3, 4, true);
        assert_eq!(g.special_ranks(), Some(vec![0, 0, 1, 1, 2]));
    }

    #[test]
    fn special_ranks_share_within_sccs() {
        // A normal 2-cycle fed by one special edge: both cycle nodes rank 1.
        let mut g = Digraph::new(3);
        g.add_edge(0, 1, true);
        g.add_edge(1, 2, false);
        g.add_edge(2, 1, false);
        assert_eq!(g.special_ranks(), Some(vec![0, 1, 1]));
    }

    #[test]
    fn special_ranks_undefined_on_special_cycles() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 1, true);
        g.add_edge(1, 0, false);
        assert_eq!(g.special_ranks(), None);
    }

    #[test]
    fn special_ranks_take_the_maximum_path() {
        // Two routes into node 3: one with 2 specials, one with 0.
        let mut g = Digraph::new(4);
        g.add_edge(0, 1, true);
        g.add_edge(1, 3, true);
        g.add_edge(0, 2, false);
        g.add_edge(2, 3, false);
        assert_eq!(g.special_ranks(), Some(vec![0, 1, 0, 2]));
    }

    #[test]
    fn large_path_does_not_overflow_stack() {
        // 100k-node path: iterative Tarjan must handle it.
        let n = 100_000;
        let mut g = Digraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, false);
        }
        assert_eq!(g.sccs().len(), n);
    }
}
