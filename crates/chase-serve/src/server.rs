//! The TCP front door: a [`Server`] accepting framed [`proto`](crate::proto)
//! traffic on a `std::net` listener, one thread per connection, all
//! connections sharing one [`Conductor`] — plus the thin [`Client`] the
//! REPL example and the load-generator bench speak through.
//!
//! Sessions are **server-side and connection-independent**: any connection
//! may address any session by id, so a tenant can open a session, drop the
//! link, and pick the warm state up on a new connection. Slots are released
//! by an explicit `Close` request, idle-TTL eviction (when the conductor is
//! configured with `evict_after`), or server shutdown.
//!
//! Requests may be **pipelined**: every frame carries a u64 correlation id
//! that the server echoes in the matching reply, so a client can keep many
//! requests in flight on one connection ([`Client::pipeline`]). The server
//! still processes each connection's frames in order — the id associates,
//! it does not reorder.
//!
//! Shutdown is cooperative: [`Server::shutdown`] raises a flag, nudges the
//! accept loop awake with a loopback connect, joins it, then closes every
//! session through the conductor. Connection threads poll the flag between
//! frames (socket read timeout) and drain themselves.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use chase_core::{ConjunctiveQuery, ConstraintSet, Instance};

use crate::conductor::{Conductor, ConductorConfig, SessionHandle};
use crate::proto::{ErrorCode, ProtoError, Request, Response};
use crate::session::{ChaseOutcome, QueryOpts, ServeError, SessionStats};

/// How often an idle connection thread wakes to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// A running session server. Dropping it (or calling
/// [`Server::shutdown`]) stops the accept loop and closes every session.
pub struct Server {
    conductor: Arc<Conductor>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

/// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
/// framed protocol traffic with the given admission policy.
pub fn serve(addr: impl ToSocketAddrs, cfg: ConductorConfig) -> io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let conductor = Arc::new(Conductor::new(cfg));
    let stop = Arc::new(AtomicBool::new(false));
    let accept_conductor = Arc::clone(&conductor);
    let accept_stop = Arc::clone(&stop);
    let accept_thread = thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let conductor = Arc::clone(&accept_conductor);
            let stop = Arc::clone(&accept_stop);
            thread::spawn(move || connection(stream, conductor, stop));
        }
    });
    Ok(Server {
        conductor,
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

impl Server {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared conductor (for in-process inspection in tests/benches).
    pub fn conductor(&self) -> &Arc<Conductor> {
        &self.conductor
    }

    /// Stop accepting, drain the accept thread, close every session.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Nudge the blocking accept() awake so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.conductor.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// One connection: read frames, dispatch against the conductor, write
/// replies. Exits on client close, malformed traffic, or server shutdown.
fn connection(stream: TcpStream, conductor: Arc<Conductor>, stop: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Poll for the next frame without committing to a blocking read,
        // so shutdown is observed between frames.
        let mut probe = [0u8; 1];
        match reader.peek(&mut probe) {
            Ok(0) => return, // client closed cleanly
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
        // A frame has started; a mid-frame stall beyond the timeout is a
        // dropped client, not an idle one — give up on the connection.
        let (corr, reply) = match Request::read_from(&mut reader) {
            Ok(Some((corr, req))) => (corr, respond(&conductor, req)),
            Ok(None) => return,
            Err(e @ (ProtoError::Oversized { .. } | ProtoError::Version { .. })) => {
                // Tell the peer why before hanging up; resync is hopeless.
                // A v1 frame carries no correlation id, so reply with 0 —
                // the pinned contract is "one final error frame, never
                // silence", not id association.
                let _ = Response::Error {
                    code: ErrorCode::Internal,
                    message: e.to_string(),
                }
                .write_to(&mut writer, 0);
                return;
            }
            Err(_) => return,
        };
        if reply.write_to(&mut writer, corr).is_err() {
            return;
        }
    }
}

fn parse_error(e: impl std::fmt::Display) -> Response {
    Response::Error {
        code: ErrorCode::Parse,
        message: e.to_string(),
    }
}

/// Route one request to the conductor and shape the reply. Total: every
/// failure becomes a [`Response::Error`], never a dropped connection.
fn respond(conductor: &Conductor, req: Request) -> Response {
    fn routed(
        conductor: &Conductor,
        session: u64,
        f: impl FnOnce(SessionHandle) -> Result<Response, ServeError>,
    ) -> Response {
        match conductor.route(session).and_then(f) {
            Ok(resp) => resp,
            Err(e) => Response::from_serve_error(&e),
        }
    }

    match req {
        Request::Open { sigma } => match ConstraintSet::parse(&sigma) {
            Err(e) => parse_error(e),
            Ok(set) => match conductor.open(set) {
                Ok(session) => Response::Opened { session },
                Err(e) => Response::from_serve_error(&e),
            },
        },
        Request::Apply { session, facts } => match Instance::parse(&facts) {
            Err(e) => parse_error(e),
            Ok(batch) => routed(conductor, session, |h| {
                h.apply(batch.atoms())
                    .map(|outcome| Response::Applied { outcome })
            }),
        },
        Request::Query { session, cq, opts } => match ConjunctiveQuery::parse(&cq) {
            Err(e) => parse_error(e),
            Ok(q) => routed(conductor, session, |h| {
                h.query(&q, opts).map(|answers| Response::Answers {
                    tuples: answers
                        .into_iter()
                        .map(|t| t.into_iter().map(|term| term.to_string()).collect())
                        .collect(),
                })
            }),
        },
        Request::Snapshot { session } => routed(conductor, session, |h| {
            h.snapshot()
                .map(|snapshot| Response::Snapshotted { snapshot })
        }),
        Request::Restore { session, snapshot } => routed(conductor, session, |h| {
            h.restore(snapshot).map(|()| Response::Restored)
        }),
        Request::Stats { session } => routed(conductor, session, |h| {
            h.stats().map(|stats| Response::Stats { stats })
        }),
        Request::Dump { session } => routed(conductor, session, |h| {
            h.dump().map(|text| Response::Dump { text })
        }),
        Request::Close { session } => match conductor.close(session) {
            Ok(()) => Response::Closed,
            Err(e) => Response::from_serve_error(&e),
        },
        Request::Metrics => Response::Metrics {
            text: conductor.metrics_text(),
        },
        Request::Persist { session } => routed(conductor, session, |h| {
            h.persist().map(|epoch| Response::Persisted { epoch })
        }),
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// What a [`Client`] call can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The transport or codec failed (disconnect, malformed frame, ...).
    Proto(ProtoError),
    /// The server answered with a protocol-level error.
    Server {
        /// Machine-readable classification.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a response the request does not admit —
    /// a peer bug, not a user error.
    Unexpected {
        /// Debug rendering of the response received.
        got: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Server { message, .. } => write!(f, "server error: {message}"),
            ClientError::Unexpected { got } => write!(f, "unexpected response: {got}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Proto(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Proto(ProtoError::from(e))
    }
}

/// A thin, blocking protocol client over one TCP connection: each method
/// writes one request frame and decodes the one reply frame. All chase
/// interpretation stays server-side; the client only moves text and
/// counters. [`Client::pipeline`] keeps a whole batch of requests in
/// flight before reading any reply.
pub struct Client {
    stream: TcpStream,
    next_corr: u64,
}

impl Client {
    /// Connect to a session server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            next_corr: 1,
        })
    }

    fn fresh_corr(&mut self) -> u64 {
        let corr = self.next_corr;
        self.next_corr = self.next_corr.wrapping_add(1);
        corr
    }

    /// One request/reply round trip; [`Response::Error`] is mapped into
    /// [`ClientError::Server`].
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let corr = self.fresh_corr();
        req.write_to(&mut self.stream, corr)?;
        self.stream.flush()?;
        match Response::read_from(&mut self.stream)? {
            None => Err(ClientError::Proto(ProtoError::Truncated)),
            Some((echo, _)) if echo != corr => Err(ClientError::Unexpected {
                got: format!("correlation id {echo} in reply to request {corr}"),
            }),
            Some((_, Response::Error { code, message })) => {
                Err(ClientError::Server { code, message })
            }
            Some((_, resp)) => Ok(resp),
        }
    }

    /// Write every request before reading any reply, then associate the
    /// replies to their requests by correlation id. The outer `Err` is a
    /// connection-level failure (nothing more can be read); the inner
    /// per-request results map [`Response::Error`] to
    /// [`ClientError::Server`] exactly like [`Client::call`]. Results come
    /// back in **request order** regardless of the order replies arrived.
    pub fn pipeline(
        &mut self,
        reqs: &[Request],
    ) -> Result<Vec<Result<Response, ClientError>>, ClientError> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        let base = self.next_corr;
        for req in reqs {
            let corr = self.fresh_corr();
            req.write_to(&mut self.stream, corr)?;
        }
        self.stream.flush()?;
        let mut slots: Vec<Option<Result<Response, ClientError>>> =
            (0..reqs.len()).map(|_| None).collect();
        for _ in 0..reqs.len() {
            let (corr, resp) = Response::read_from(&mut self.stream)?
                .ok_or(ClientError::Proto(ProtoError::Truncated))?;
            let idx = corr.wrapping_sub(base);
            let slot = usize::try_from(idx)
                .ok()
                .and_then(|i| slots.get_mut(i))
                .ok_or_else(|| ClientError::Unexpected {
                    got: format!("correlation id {corr} outside pipelined batch"),
                })?;
            if slot.is_some() {
                return Err(ClientError::Unexpected {
                    got: format!("duplicate reply for correlation id {corr}"),
                });
            }
            *slot = Some(match resp {
                Response::Error { code, message } => Err(ClientError::Server { code, message }),
                resp => Ok(resp),
            });
        }
        // Every slot is filled: n distinct in-range ids over n slots.
        Ok(slots.into_iter().map(|s| s.unwrap()).collect())
    }

    /// Open a session over a constraint set in surface syntax (`;` or
    /// newline separated); returns the session id.
    pub fn open(&mut self, sigma: &str) -> Result<u64, ClientError> {
        match self.call(&Request::Open {
            sigma: sigma.into(),
        })? {
            Response::Opened { session } => Ok(session),
            other => Err(unexpected(other)),
        }
    }

    /// Apply a batch of facts in surface syntax (e.g. `e(a,b). e(b,c).`).
    pub fn apply(&mut self, session: u64, facts: &str) -> Result<ChaseOutcome, ClientError> {
        match self.call(&Request::Apply {
            session,
            facts: facts.into(),
        })? {
            Response::Applied { outcome } => Ok(outcome),
            other => Err(unexpected(other)),
        }
    }

    /// Answer a conjunctive query; each tuple's terms come back in
    /// surface syntax.
    pub fn query(
        &mut self,
        session: u64,
        cq: &str,
        opts: QueryOpts,
    ) -> Result<Vec<Vec<String>>, ClientError> {
        match self.call(&Request::Query {
            session,
            cq: cq.into(),
            opts,
        })? {
            Response::Answers { tuples } => Ok(tuples),
            other => Err(unexpected(other)),
        }
    }

    /// Take a server-side snapshot; returns its id.
    pub fn snapshot(&mut self, session: u64) -> Result<u64, ClientError> {
        match self.call(&Request::Snapshot { session })? {
            Response::Snapshotted { snapshot } => Ok(snapshot),
            other => Err(unexpected(other)),
        }
    }

    /// Rewind the session to a snapshot id.
    pub fn restore(&mut self, session: u64, snapshot: u64) -> Result<(), ClientError> {
        match self.call(&Request::Restore { session, snapshot })? {
            Response::Restored => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Fetch the session's [`SessionStats`].
    pub fn stats(&mut self, session: u64) -> Result<SessionStats, ClientError> {
        match self.call(&Request::Stats { session })? {
            Response::Stats { stats } => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// Fetch the chased instance as fact text.
    pub fn dump(&mut self, session: u64) -> Result<String, ClientError> {
        match self.call(&Request::Dump { session })? {
            Response::Dump { text } => Ok(text),
            other => Err(unexpected(other)),
        }
    }

    /// Close the session, releasing its slot under the global cap.
    pub fn close(&mut self, session: u64) -> Result<(), ClientError> {
        match self.call(&Request::Close { session })? {
            Response::Closed => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Fetch the server-wide metrics exposition: Prometheus-style
    /// `name{label} value` text covering conductor gauges, apply/query
    /// latency histograms and every open session's engine phase timings.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(unexpected(other)),
        }
    }

    /// Force a durability point on a durable session (snapshot + WAL
    /// compaction); returns the epoch the on-disk state now covers. Errors
    /// with [`ErrorCode::Durability`] when the server has no durable root.
    pub fn persist(&mut self, session: u64) -> Result<u64, ClientError> {
        match self.call(&Request::Persist { session })? {
            Response::Persisted { epoch } => Ok(epoch),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(got: Response) -> ClientError {
    ClientError::Unexpected {
        got: format!("{got:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_session_lifecycle() {
        let server = serve("127.0.0.1:0", ConductorConfig::default()).unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        let s = c.open("rail(X,Y,D) -> rail(Y,X,D)").unwrap();
        let out = c.apply(s, "rail(berlin,paris,d9).").unwrap();
        assert_eq!(out.total_facts, 2);
        let ans = c
            .query(s, "q(X) <- rail(X,paris,D)", QueryOpts::default())
            .unwrap();
        assert_eq!(ans, vec![vec!["berlin".to_string()]]);
        let snap = c.snapshot(s).unwrap();
        c.apply(s, "rail(paris,lyon,d2).").unwrap();
        assert_eq!(c.stats(s).unwrap().total_facts, 4);
        c.restore(s, snap).unwrap();
        assert_eq!(c.stats(s).unwrap().total_facts, 2);
        assert!(c.dump(s).unwrap().contains("rail(berlin,paris,d9)"));
        c.close(s).unwrap();
        let err = c.stats(s).unwrap_err();
        assert!(matches!(
            err,
            ClientError::Server {
                code: ErrorCode::UnknownSession,
                ..
            }
        ));
        server.shutdown();
    }

    #[test]
    fn metrics_over_live_tcp_expose_phases_and_gauges() {
        let server = serve("127.0.0.1:0", ConductorConfig::default()).unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        let s = c
            .open("e(X,Y) -> e(Y,X); e(X,Y), e(Y,Z) -> e(X,Z)")
            .unwrap();
        c.apply(s, "e(a,b). e(b,c). e(c,d).").unwrap();
        c.query(s, "q(X) <- e(a,X)", QueryOpts::default()).unwrap();
        let text = c.metrics().unwrap();
        assert!(text.contains("chase_sessions_open 1"), "{text}");
        assert!(text.contains("chase_sessions_opened_total 1"), "{text}");
        // Per-stage latency made it across the wire with nonzero medians.
        let p50 = |name: &str| -> u64 {
            text.lines()
                .find_map(|l| l.strip_prefix(name).map(|v| v.trim().parse().unwrap()))
                .unwrap_or_else(|| panic!("missing {name} in:\n{text}"))
        };
        assert!(p50("chase_phase_ns_p50_ns{phase=\"insert\"} ") > 0);
        assert!(p50("chase_phase_ns_p99_ns{phase=\"insert\"} ") > 0);
        assert!(p50("chase_apply_ns_p50_ns ") > 0);
        server.shutdown();
    }

    #[test]
    fn sessions_survive_reconnects() {
        let server = serve("127.0.0.1:0", ConductorConfig::default()).unwrap();
        let s = {
            let mut c = Client::connect(server.addr()).unwrap();
            let s = c.open("e(X,Y) -> e(Y,X)").unwrap();
            c.apply(s, "e(a,b).").unwrap();
            s
        }; // connection dropped here
        let mut c2 = Client::connect(server.addr()).unwrap();
        assert_eq!(c2.stats(s).unwrap().total_facts, 2);
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_answer_in_request_order() {
        let server = serve("127.0.0.1:0", ConductorConfig::default()).unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        let s = c.open("e(X,Y) -> e(Y,X)").unwrap();
        let reqs = vec![
            Request::Apply {
                session: s,
                facts: "e(a,b).".into(),
            },
            Request::Query {
                session: s,
                cq: "q(X) <- e(b,X)".into(),
                opts: QueryOpts::default(),
            },
            Request::Stats { session: s },
            Request::Apply {
                session: s,
                facts: "e(X,".into(), // parse error mid-batch
            },
            Request::Stats { session: s },
        ];
        let replies = c.pipeline(&reqs).unwrap();
        assert_eq!(replies.len(), 5);
        assert!(matches!(replies[0], Ok(Response::Applied { .. })));
        // Read-your-writes under pipelining: the query queued behind the
        // apply on the same connection sees the applied batch.
        match &replies[1] {
            Ok(Response::Answers { tuples }) => {
                assert_eq!(tuples, &vec![vec!["a".to_string()]]);
            }
            other => panic!("unexpected reply: {other:?}"),
        }
        assert!(matches!(
            replies[2],
            Ok(Response::Stats { ref stats }) if stats.total_facts == 2
        ));
        assert!(matches!(
            replies[3],
            Err(ClientError::Server {
                code: ErrorCode::Parse,
                ..
            })
        ));
        // The error did not desynchronize the stream.
        assert!(matches!(replies[4], Ok(Response::Stats { .. })));
        // And the connection is still usable for plain calls afterwards.
        assert_eq!(c.stats(s).unwrap().total_facts, 2);
        server.shutdown();
    }

    #[test]
    fn server_surfaces_parse_and_capacity_errors() {
        let server = serve(
            "127.0.0.1:0",
            ConductorConfig {
                max_sessions: 1,
                ..ConductorConfig::default()
            },
        )
        .unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        let err = c.open("this is not sigma").unwrap_err();
        assert!(matches!(
            err,
            ClientError::Server {
                code: ErrorCode::Parse,
                ..
            }
        ));
        let s = c.open("e(X,Y) -> e(Y,X)").unwrap();
        let err = c.open("e(X,Y) -> e(Y,X)").unwrap_err();
        assert!(matches!(
            err,
            ClientError::Server {
                code: ErrorCode::Capacity,
                ..
            }
        ));
        // Bad facts and bad queries come back as Parse, session unharmed.
        assert!(c.apply(s, "e(X,").is_err());
        assert!(c.query(s, "nonsense", QueryOpts::default()).is_err());
        assert_eq!(c.stats(s).unwrap().epoch, 0);
        server.shutdown();
    }
}
