//! Durable session storage: a write-ahead log of applied batches plus
//! periodic columnar snapshots.
//!
//! ## The WAL is the truth, snapshots are cache
//!
//! A durable [`crate::ChaseSession`] appends every update batch to an
//! append-only log *before* applying it (write-ahead ordering). Because
//! chase traces are deterministic — canonical trigger selection is pinned
//! bit-identical across every engine in this workspace — replaying the
//! logged batches through the ordinary warm-resume path reconstructs the
//! exact pre-crash instance, nulls, counters and all. Snapshots
//! ([`chase_core::Instance::to_snapshot_bytes`]) only exist so a reopen can
//! skip re-chasing history: load the newest valid snapshot, then replay
//! WAL-since-snapshot. Deleting every snapshot loses no data.
//!
//! ## WAL record grammar
//!
//! The log reuses the framing discipline of [`crate::proto`]: u32-LE length
//! prefix, version + tag bytes, and a trailing checksum per record.
//!
//! ```text
//! record  := u32 LE payload-length | payload | u32 LE CRC-32(payload)
//! payload := version (u8 = 1) | tag (u8 = 1, batch)
//!          | epoch (u64 LE)             -- the epoch this batch becomes
//!          | u32 LE text-length | text  -- facts in surface syntax
//! ```
//!
//! Batches travel as *text* in the workspace's fact surface syntax — the
//! same encoding the wire protocol uses — so the log inherits the parser's
//! validation and stays readable with `xxd`. Labeled nulls round-trip
//! (`_n3` parses back to null 3), and null ids are session-local, so text
//! is a stable on-disk encoding even though in-memory `Sym` ids are not.
//!
//! ## Torn-write rule
//!
//! On open, records are read until the first incomplete frame or checksum
//! mismatch; everything from that point is **truncated away**. This is
//! safe, not lossy: a torn tail can only be the record of a batch whose
//! apply was never acknowledged (appends complete — and fsync, per policy —
//! before the batch is applied and the reply released), so dropping it
//! re-creates a state the client was entitled to observe.
//!
//! ## Version byte policy
//!
//! Every record carries [`WAL_VERSION`]; a record with an unknown version
//! or tag is treated exactly like a corrupt record (truncate from there).
//! Snapshot files carry their own version ([`SESSION_SNAPSHOT_VERSION`]
//! wrapping the instance codec's version); an unreadable snapshot is
//! *skipped*, falling back to an older snapshot or to full WAL replay —
//! never an error, because snapshots are cache.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use chase_core::snapshot::crc32;
use chase_core::{ConstraintSet, Instance};
use chase_engine::{ChaseConfig, ChaseMode, Strategy};

use crate::session::SessionConfig;

/// Version byte carried in every WAL record.
pub const WAL_VERSION: u8 = 1;

/// Record tag: an applied update batch.
pub const WAL_TAG_BATCH: u8 = 1;

/// Version byte of the session snapshot container (wraps the instance
/// codec, which carries its own version).
pub const SESSION_SNAPSHOT_VERSION: u8 = 1;

/// Magic prefix of a session snapshot file.
const SESSION_SNAPSHOT_MAGIC: [u8; 4] = *b"CSSN";

/// Hard cap on a single WAL record's payload (mirrors the wire protocol's
/// frame cap): a corrupt length prefix cannot drive allocation.
const MAX_WAL_RECORD: u32 = 16 * 1024 * 1024;

/// File names inside a session's durability directory.
const WAL_FILE: &str = "wal.log";
const MANIFEST_FILE: &str = "MANIFEST";
const SNAPSHOT_PREFIX: &str = "snapshot-";
const SNAPSHOT_SUFFIX: &str = ".csnp";

/// When a durable session calls `fsync` on its WAL.
///
/// The trade-off is the classic one: [`FsyncPolicy::EveryBatch`] bounds
/// loss to zero acknowledged batches at the cost of one disk flush per
/// apply; [`FsyncPolicy::Interval`] amortizes the flush over `n` appends
/// and accepts that a crash may drop up to `n - 1` *acknowledged* batches
/// (the torn-tail rule then rewinds to the last synced record boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every appended batch (the default): an acknowledged
    /// apply is durable.
    #[default]
    EveryBatch,
    /// `fsync` every `n` appends. `Interval(1)` behaves like `EveryBatch`;
    /// `Interval(0)` is treated as `Interval(1)`.
    Interval(u32),
}

/// Durability knobs for a session: fsync policy and snapshot compaction
/// thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// When WAL appends are flushed to disk.
    pub fsync: FsyncPolicy,
    /// Write a snapshot (and compact the WAL) after this many applied
    /// batches since the last snapshot. `0` disables the batch-count
    /// trigger.
    pub snapshot_every_batches: u32,
    /// Write a snapshot (and compact the WAL) once this many WAL bytes
    /// accumulated since the last snapshot. `0` disables the byte trigger.
    pub snapshot_every_bytes: u64,
    /// How many snapshot generations to keep on disk (at least 1). Older
    /// snapshot files are removed after a newer one lands.
    pub keep_snapshots: usize,
}

impl Default for DurabilityConfig {
    fn default() -> DurabilityConfig {
        DurabilityConfig {
            fsync: FsyncPolicy::EveryBatch,
            snapshot_every_batches: 64,
            snapshot_every_bytes: 1 << 20,
            keep_snapshots: 2,
        }
    }
}

/// Counters a durable session accumulates, surfaced through
/// [`crate::ChaseSession::durability`] and the `\metrics` exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilityStats {
    /// WAL records appended by this process (replay does not count).
    pub wal_appends: u64,
    /// Bytes appended to the WAL by this process.
    pub wal_bytes: u64,
    /// `fsync` calls issued on the WAL.
    pub wal_fsyncs: u64,
    /// WAL records replayed through the warm path when the session opened.
    pub replayed_records: u64,
    /// Torn/corrupt trailing bytes truncated from the WAL at open.
    pub truncated_bytes: u64,
    /// Did the open load a snapshot (warm start) rather than replay the
    /// full log?
    pub loaded_snapshot: bool,
    /// Snapshots written by this process (periodic compaction plus explicit
    /// `persist` calls).
    pub snapshots_written: u64,
    /// Snapshot writes that failed (the WAL still holds everything, so a
    /// failed snapshot costs replay time, not data).
    pub snapshot_errors: u64,
    /// The epoch covered by the newest on-disk snapshot (0 = none).
    pub snapshot_epoch: u64,
}

/// One decoded WAL record: the batch text that became `epoch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The session epoch this batch produced when first applied.
    pub epoch: u64,
    /// The batch, in fact surface syntax.
    pub batch: String,
}

/// The append-only log handle a durable session holds.
#[derive(Debug)]
pub(crate) struct Wal {
    file: File,
    /// Current file length — the append cursor.
    len: u64,
    appends_since_fsync: u32,
}

impl Wal {
    /// Open (or create) the WAL in `dir`, returning the handle, every valid
    /// record, and how many torn/corrupt trailing bytes were truncated.
    pub(crate) fn open(dir: &Path) -> io::Result<(Wal, Vec<WalRecord>, u64)> {
        let path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, valid_len) = decode_records(&bytes);
        let truncated = bytes.len() as u64 - valid_len;
        if truncated > 0 {
            file.set_len(valid_len)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(valid_len))?;
        Ok((
            Wal {
                file,
                len: valid_len,
                appends_since_fsync: 0,
            },
            records,
            truncated,
        ))
    }

    /// Append one batch record; returns the bytes written. The record is in
    /// the OS page cache after this — durability requires [`Wal::fsync`]
    /// (called per the session's [`FsyncPolicy`]).
    pub(crate) fn append(&mut self, epoch: u64, batch: &str) -> io::Result<u64> {
        let mut payload = Vec::with_capacity(batch.len() + 16);
        payload.push(WAL_VERSION);
        payload.push(WAL_TAG_BATCH);
        payload.extend_from_slice(&epoch.to_le_bytes());
        payload.extend_from_slice(&(batch.len() as u32).to_le_bytes());
        payload.extend_from_slice(batch.as_bytes());
        assert!(
            payload.len() as u32 <= MAX_WAL_RECORD,
            "batch text exceeds the WAL record cap"
        );
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        self.appends_since_fsync += 1;
        Ok(frame.len() as u64)
    }

    /// Should this append be flushed under `policy`?
    pub(crate) fn fsync_due(&self, policy: FsyncPolicy) -> bool {
        match policy {
            FsyncPolicy::EveryBatch => true,
            FsyncPolicy::Interval(n) => self.appends_since_fsync >= n.max(1),
        }
    }

    /// Flush appended records to stable storage.
    pub(crate) fn fsync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.appends_since_fsync = 0;
        Ok(())
    }

    /// Drop every record (they are covered by a snapshot) and start the log
    /// over. Flushes, so the empty log and the snapshot that justified the
    /// truncation can never be observed torn apart by a crash in between
    /// (the snapshot is written and fsynced first).
    pub(crate) fn truncate_all(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_all()?;
        self.len = 0;
        self.appends_since_fsync = 0;
        Ok(())
    }

    /// Current log length in bytes.
    pub(crate) fn len(&self) -> u64 {
        self.len
    }
}

/// Decode records until the first torn or corrupt one; returns the records
/// and the byte length of the valid prefix.
fn decode_records(bytes: &[u8]) -> (Vec<WalRecord>, u64) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while let Some(rest) = bytes.get(at..) {
        if rest.len() < 4 {
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        if len > MAX_WAL_RECORD {
            break;
        }
        let len = len as usize;
        if rest.len() < 4 + len + 4 {
            break;
        }
        let payload = &rest[4..4 + len];
        let stored = u32::from_le_bytes(rest[4 + len..4 + len + 4].try_into().unwrap());
        if crc32(payload) != stored {
            break;
        }
        let Some(rec) = decode_payload(payload) else {
            break;
        };
        records.push(rec);
        at += 4 + len + 4;
    }
    (records, at as u64)
}

/// Decode one record payload; `None` on any structural problem (treated as
/// corruption by the caller).
fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    if payload.len() < 14 || payload[0] != WAL_VERSION || payload[1] != WAL_TAG_BATCH {
        return None;
    }
    let epoch = u64::from_le_bytes(payload[2..10].try_into().unwrap());
    let text_len = u32::from_le_bytes(payload[10..14].try_into().unwrap()) as usize;
    if payload.len() != 14 + text_len {
        return None;
    }
    let batch = std::str::from_utf8(&payload[14..]).ok()?.to_string();
    Some(WalRecord { epoch, batch })
}

// ---------------------------------------------------------------------------
// Session snapshot files
// ---------------------------------------------------------------------------

/// Write a snapshot of `instance` as of `epoch` into `dir`, atomically:
/// the bytes land in a temporary file, are fsynced, and are renamed into
/// place, so a crash mid-write leaves either the old set of snapshots or
/// the old set plus one complete new file — never a half-written one that
/// parses.
pub(crate) fn write_snapshot(dir: &Path, epoch: u64, instance: &Instance) -> io::Result<PathBuf> {
    let body = instance.to_snapshot_bytes();
    let mut out = Vec::with_capacity(body.len() + 32);
    out.extend_from_slice(&SESSION_SNAPSHOT_MAGIC);
    out.push(SESSION_SNAPSHOT_VERSION);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());

    let final_path = dir.join(format!("{SNAPSHOT_PREFIX}{epoch:020}{SNAPSHOT_SUFFIX}"));
    let tmp_path = dir.join(format!(".{SNAPSHOT_PREFIX}{epoch:020}.tmp"));
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(&out)?;
        f.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    Ok(final_path)
}

/// Decode one snapshot file; `None` when it is unreadable in any way
/// (snapshots are cache — an invalid one is skipped, never fatal).
fn read_snapshot(path: &Path) -> Option<(u64, Instance)> {
    let bytes = fs::read(path).ok()?;
    if bytes.len() < 4 + 1 + 8 + 4 + 4 {
        return None;
    }
    let (content, tail) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(tail.try_into().unwrap());
    if crc32(content) != stored || content[0..4] != SESSION_SNAPSHOT_MAGIC {
        return None;
    }
    if content[4] != SESSION_SNAPSHOT_VERSION {
        return None;
    }
    let epoch = u64::from_le_bytes(content[5..13].try_into().unwrap());
    let body_len = u32::from_le_bytes(content[13..17].try_into().unwrap()) as usize;
    if content.len() != 17 + body_len {
        return None;
    }
    let instance = Instance::from_snapshot_bytes(&content[17..]).ok()?;
    Some((epoch, instance))
}

/// Every snapshot file in `dir`, sorted by epoch descending (the zero-padded
/// file names sort correctly, but the epoch is re-read from the name for
/// robustness).
fn snapshot_files(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut found = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix(SNAPSHOT_PREFIX)
            .and_then(|s| s.strip_suffix(SNAPSHOT_SUFFIX))
        else {
            continue;
        };
        let Ok(epoch) = stem.parse::<u64>() else {
            continue;
        };
        found.push((epoch, entry.path()));
    }
    found.sort_by_key(|&(epoch, _)| std::cmp::Reverse(epoch));
    found
}

/// Load the newest snapshot in `dir` that decodes validly, if any.
pub(crate) fn load_newest_snapshot(dir: &Path) -> Option<(u64, Instance)> {
    snapshot_files(dir)
        .into_iter()
        .find_map(|(_, path)| read_snapshot(&path))
}

/// Remove all but the newest `keep` snapshot files (best-effort; removal
/// failures are ignored — stale snapshots waste disk, nothing else).
pub(crate) fn prune_snapshots(dir: &Path, keep: usize) {
    for (_, path) in snapshot_files(dir).into_iter().skip(keep.max(1)) {
        let _ = fs::remove_file(path);
    }
}

/// Remove snapshots from abandoned futures: after a restore rewinds the
/// session to `epoch`, snapshots beyond it describe a timeline that no
/// longer exists and must not win the newest-valid scan at the next open.
pub(crate) fn remove_snapshots_above(dir: &Path, epoch: u64) {
    for (e, path) in snapshot_files(dir) {
        if e > epoch {
            let _ = fs::remove_file(path);
        }
    }
}

// ---------------------------------------------------------------------------
// Manifest: the session's sigma and configuration, human-readable
// ---------------------------------------------------------------------------

/// Serialize `set` and `cfg` into the manifest text format: a line-oriented
/// `key value` header (both chase configurations spelled out field by
/// field), then the constraint set in surface syntax after a `sigma` line.
fn render_manifest(set: &ConstraintSet, cfg: &SessionConfig) -> String {
    let mut out = String::from("chase-session v1\n");
    render_chase_cfg(&mut out, "chase", &cfg.chase);
    out.push_str(&format!("use_sqo {}\n", cfg.use_sqo));
    render_chase_cfg(&mut out, "sqo_chase", &cfg.sqo_chase);
    out.push_str(&format!("sqo_max_plan_atoms {}\n", cfg.sqo_max_plan_atoms));
    out.push_str("sigma\n");
    out.push_str(&set.to_string());
    out.push('\n');
    out
}

fn render_chase_cfg(out: &mut String, prefix: &str, c: &ChaseConfig) {
    let mode = match c.mode {
        ChaseMode::Standard => "standard",
        ChaseMode::Oblivious => "oblivious",
    };
    out.push_str(&format!("{prefix}.mode {mode}\n"));
    let strategy = match &c.strategy {
        Strategy::RoundRobin => "round_robin".to_string(),
        Strategy::FixedCycle(ix) => format!("fixed_cycle {}", join_usize(ix)),
        Strategy::Random { seed } => format!("random {seed}"),
        Strategy::Phased(groups) => format!(
            "phased {}",
            groups
                .iter()
                .map(|g| join_usize(g))
                .collect::<Vec<_>>()
                .join("|")
        ),
    };
    out.push_str(&format!("{prefix}.strategy {strategy}\n"));
    out.push_str(&format!("{prefix}.max_steps {}\n", opt_usize(c.max_steps)));
    out.push_str(&format!("{prefix}.max_nulls {}\n", opt_usize(c.max_nulls)));
    out.push_str(&format!(
        "{prefix}.monitor_depth {}\n",
        opt_usize(c.monitor_depth)
    ));
    out.push_str(&format!("{prefix}.keep_trace {}\n", c.keep_trace));
    out.push_str(&format!("{prefix}.keep_monitor {}\n", c.keep_monitor));
    out.push_str(&format!("{prefix}.use_planner {}\n", c.use_planner));
}

fn join_usize(v: &[usize]) -> String {
    v.iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn opt_usize(v: Option<usize>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "none".to_string(),
    }
}

/// Parse a manifest back into the constraint set and session configuration.
fn parse_manifest(text: &str) -> Result<(ConstraintSet, SessionConfig), String> {
    let mut lines = text.lines();
    match lines.next() {
        Some("chase-session v1") => {}
        other => return Err(format!("unknown manifest header {other:?}")),
    }
    let mut cfg = SessionConfig::default();
    let mut sigma_text = String::new();
    let mut in_sigma = false;
    for line in lines {
        if in_sigma {
            sigma_text.push_str(line);
            sigma_text.push('\n');
            continue;
        }
        if line == "sigma" {
            in_sigma = true;
            continue;
        }
        let (key, value) = line
            .split_once(' ')
            .ok_or_else(|| format!("malformed manifest line {line:?}"))?;
        match key {
            "use_sqo" => cfg.use_sqo = parse_bool(key, value)?,
            "sqo_max_plan_atoms" => {
                cfg.sqo_max_plan_atoms =
                    value.parse().map_err(|_| format!("bad {key} {value:?}"))?
            }
            _ if key.starts_with("chase.") => {
                apply_cfg_line(&mut cfg.chase, &key["chase.".len()..], value)?
            }
            _ if key.starts_with("sqo_chase.") => {
                apply_cfg_line(&mut cfg.sqo_chase, &key["sqo_chase.".len()..], value)?
            }
            _ => return Err(format!("unknown manifest key {key:?}")),
        }
    }
    if !in_sigma {
        return Err("manifest has no sigma section".to_string());
    }
    let set = ConstraintSet::parse(&sigma_text).map_err(|e| format!("manifest sigma: {e}"))?;
    Ok((set, cfg))
}

fn parse_bool(key: &str, value: &str) -> Result<bool, String> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(format!("bad {key} {value:?}")),
    }
}

fn parse_opt_usize(key: &str, value: &str) -> Result<Option<usize>, String> {
    if value == "none" {
        return Ok(None);
    }
    value
        .parse()
        .map(Some)
        .map_err(|_| format!("bad {key} {value:?}"))
}

fn parse_usize_list(key: &str, value: &str) -> Result<Vec<usize>, String> {
    if value.is_empty() {
        return Ok(Vec::new());
    }
    value
        .split(',')
        .map(|n| n.parse().map_err(|_| format!("bad {key} {value:?}")))
        .collect()
}

fn apply_cfg_line(c: &mut ChaseConfig, key: &str, value: &str) -> Result<(), String> {
    match key {
        "mode" => {
            c.mode = match value {
                "standard" => ChaseMode::Standard,
                "oblivious" => ChaseMode::Oblivious,
                _ => return Err(format!("bad mode {value:?}")),
            }
        }
        "strategy" => {
            let (head, rest) = value.split_once(' ').unwrap_or((value, ""));
            c.strategy = match head {
                "round_robin" => Strategy::RoundRobin,
                "fixed_cycle" => Strategy::FixedCycle(parse_usize_list(key, rest)?),
                "random" => Strategy::Random {
                    seed: rest.parse().map_err(|_| format!("bad seed {rest:?}"))?,
                },
                "phased" => Strategy::Phased(
                    rest.split('|')
                        .filter(|g| !g.is_empty())
                        .map(|g| parse_usize_list(key, g))
                        .collect::<Result<_, _>>()?,
                ),
                _ => return Err(format!("bad strategy {value:?}")),
            }
        }
        "max_steps" => c.max_steps = parse_opt_usize(key, value)?,
        "max_nulls" => c.max_nulls = parse_opt_usize(key, value)?,
        "monitor_depth" => c.monitor_depth = parse_opt_usize(key, value)?,
        "keep_trace" => c.keep_trace = parse_bool(key, value)?,
        "keep_monitor" => c.keep_monitor = parse_bool(key, value)?,
        "use_planner" => c.use_planner = parse_bool(key, value)?,
        _ => return Err(format!("unknown config key {key:?}")),
    }
    Ok(())
}

/// Write the manifest for a fresh durability directory (atomically, like
/// snapshots: tmp + fsync + rename).
pub(crate) fn write_manifest(
    dir: &Path,
    set: &ConstraintSet,
    cfg: &SessionConfig,
) -> io::Result<()> {
    let tmp = dir.join(".MANIFEST.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(render_manifest(set, cfg).as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(tmp, dir.join(MANIFEST_FILE))
}

/// Read the manifest in `dir`, if one exists. `Ok(None)` = fresh directory;
/// `Err` = a manifest exists but cannot be understood.
pub(crate) fn read_manifest(dir: &Path) -> Result<Option<(ConstraintSet, SessionConfig)>, String> {
    let path = dir.join(MANIFEST_FILE);
    if !path.exists() {
        return Ok(None);
    }
    let text = fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    parse_manifest(&text).map(Some)
}

/// Does `dir` look like a session durability directory (has a manifest)?
pub(crate) fn is_session_dir(dir: &Path) -> bool {
    dir.join(MANIFEST_FILE).exists()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_engine::ChaseConfig;

    fn tempdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chase-wal-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn wal_appends_round_trip_across_reopen() {
        let dir = tempdir("roundtrip");
        {
            let (mut wal, records, truncated) = Wal::open(&dir).unwrap();
            assert!(records.is_empty());
            assert_eq!(truncated, 0);
            wal.append(1, "e(a,b). ").unwrap();
            wal.append(2, "e(b,c). e(c,d). ").unwrap();
            wal.fsync().unwrap();
        }
        let (_, records, truncated) = Wal::open(&dir).unwrap();
        assert_eq!(truncated, 0);
        assert_eq!(
            records,
            vec![
                WalRecord {
                    epoch: 1,
                    batch: "e(a,b). ".into()
                },
                WalRecord {
                    epoch: 2,
                    batch: "e(b,c). e(c,d). ".into()
                },
            ]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_stays_truncated() {
        let dir = tempdir("torn");
        {
            let (mut wal, _, _) = Wal::open(&dir).unwrap();
            wal.append(1, "e(a,b). ").unwrap();
            wal.fsync().unwrap();
        }
        // Simulate a crash mid-append: half a record at the tail.
        let path = dir.join(WAL_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[200, 0, 0, 0, WAL_VERSION, WAL_TAG_BATCH, 9, 9])
            .unwrap();
        drop(f);
        let before = fs::metadata(&path).unwrap().len();
        let (_, records, truncated) = Wal::open(&dir).unwrap();
        assert_eq!(records.len(), 1, "the intact record survives");
        assert_eq!(truncated, 8);
        assert_eq!(fs::metadata(&path).unwrap().len(), before - 8);
        // A second open sees a clean log.
        let (_, records, truncated) = Wal::open(&dir).unwrap();
        assert_eq!((records.len(), truncated), (1, 0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_truncates_from_there() {
        let dir = tempdir("corrupt");
        {
            let (mut wal, _, _) = Wal::open(&dir).unwrap();
            wal.append(1, "e(a,b). ").unwrap();
            wal.append(2, "e(b,c). ").unwrap();
            wal.fsync().unwrap();
        }
        // Flip a byte inside the second record's payload.
        let path = dir.join(WAL_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 6] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let (_, records, truncated) = Wal::open(&dir).unwrap();
        assert_eq!(records.len(), 1);
        assert!(truncated > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_files_newest_valid_wins() {
        let dir = tempdir("snapshots");
        let early = Instance::parse("e(a,b).").unwrap();
        let late = Instance::parse("e(a,b). e(b,c).").unwrap();
        write_snapshot(&dir, 3, &early).unwrap();
        let late_path = write_snapshot(&dir, 7, &late).unwrap();
        let (epoch, inst) = load_newest_snapshot(&dir).unwrap();
        assert_eq!(epoch, 7);
        assert_eq!(inst, late);
        // Corrupt the newest: loading falls back to the older one.
        let mut bytes = fs::read(&late_path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        fs::write(&late_path, &bytes).unwrap();
        let (epoch, inst) = load_newest_snapshot(&dir).unwrap();
        assert_eq!(epoch, 3);
        assert_eq!(inst, early);
        // Pruning keeps the newest files by epoch.
        write_snapshot(&dir, 9, &late).unwrap();
        prune_snapshots(&dir, 1);
        assert_eq!(snapshot_files(&dir).len(), 1);
        assert_eq!(snapshot_files(&dir)[0].0, 9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_round_trips_every_config_field() {
        let dir = tempdir("manifest");
        let set = ConstraintSet::parse("S(X) -> E(X,Y); E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
        let cfg = SessionConfig {
            chase: ChaseConfig {
                mode: ChaseMode::Oblivious,
                strategy: Strategy::Phased(vec![vec![0, 2], vec![1]]),
                max_steps: None,
                max_nulls: Some(77),
                monitor_depth: Some(4),
                keep_trace: true,
                keep_monitor: true,
                use_planner: false,
            },
            use_sqo: false,
            sqo_chase: ChaseConfig {
                strategy: Strategy::Random { seed: 42 },
                ..ChaseConfig::with_max_steps(123)
            },
            sqo_max_plan_atoms: 5,
        };
        write_manifest(&dir, &set, &cfg).unwrap();
        let (set2, cfg2) = read_manifest(&dir).unwrap().unwrap();
        assert_eq!(set2, set);
        assert_eq!(cfg2, cfg);
        // FixedCycle too (separate write to cover the remaining variant).
        let cfg3 = SessionConfig {
            chase: ChaseConfig {
                strategy: Strategy::FixedCycle(vec![1, 0, 1]),
                ..ChaseConfig::default()
            },
            ..SessionConfig::default()
        };
        write_manifest(&dir, &set, &cfg3).unwrap();
        let (_, cfg4) = read_manifest(&dir).unwrap().unwrap();
        assert_eq!(cfg4, cfg3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_dir_has_no_manifest() {
        let dir = tempdir("fresh");
        assert!(read_manifest(&dir).unwrap().is_none());
        assert!(!is_session_dir(&dir));
        fs::remove_dir_all(&dir).unwrap();
    }
}
