#![warn(missing_docs)]

//! # chase-serve
//!
//! The serving layer: long-lived **incremental chase sessions** over the
//! engines of this workspace. Where `chase-engine` chases one instance
//! once and returns, a [`ChaseSession`] stays resident — it owns the
//! columnar instance, the delta engine's warm trigger pool and memo, and
//! the `chase-plan` plan cache — and absorbs **update batches**, each one
//! continued semi-naively from the batch delta instead of re-chasing from
//! scratch. On top of the warm state it answers **certain-answer
//! conjunctive queries** (optionally routed through `chase-sqo`
//! join-elimination rewritings) and supports **snapshot/restore/fork** for
//! cheap what-if branching.
//!
//! This is the paper's own application framing made operational: *Stop the
//! Chase* motivates the chase as a repeated, latency-sensitive operation
//! inside data exchange and semantic query optimization — exactly the
//! setting where the dominant cost is redoing trigger matching that an
//! earlier chase already did.
//!
//! ## Example
//!
//! ```
//! use chase_core::{ConjunctiveQuery, ConstraintSet, Instance};
//! use chase_serve::{ChaseSession, ServeError};
//!
//! // Travel constraints: rail links are symmetric.
//! let sigma = ConstraintSet::parse("rail(X,Y,D) -> rail(Y,X,D)").unwrap();
//! let mut session = ChaseSession::new(sigma);
//!
//! // Ingest update batches; each continues the chase warm.
//! session.apply(Instance::parse("rail(berlin,paris,d9).").unwrap().atoms()).unwrap();
//! let out = session.apply(Instance::parse("rail(paris,lyon,d2).").unwrap().atoms()).unwrap();
//! assert_eq!(out.steps, 1); // only the new link's symmetric closure fires
//!
//! // Certain-answer queries over the chased state.
//! let q = ConjunctiveQuery::parse("q(X) <- rail(X,paris,D)").unwrap();
//! let from_paris = session.query(&q).unwrap();
//! assert_eq!(from_paris.len(), 2); // berlin and lyon
//!
//! // Snapshot, diverge, rewind.
//! let snap = session.snapshot();
//! session.apply(Instance::parse("rail(lyon,nice,d1).").unwrap().atoms()).unwrap();
//! session.restore(&snap);
//! assert_eq!(session.instance(), snap.instance());
//! # Ok::<(), ServeError>(())
//! ```

pub mod conductor;
pub mod proto;
pub mod server;
pub mod session;
pub mod wal;

pub use conductor::{Conductor, ConductorConfig, FleetStats, SessionHandle};
pub use server::{serve, Client, ClientError, Server};
pub use session::{
    ChaseOutcome, ChaseSession, QueryOpts, QuerySpec, ServeError, SessionBuilder, SessionConfig,
    SessionSnapshot, SessionStats,
};
pub use wal::{DurabilityConfig, DurabilityStats, FsyncPolicy, WalRecord};
