//! The [`ChaseSession`]: a long-lived handle over one instance, one
//! constraint set, and the delta engine's warm run state.
//!
//! A session owns a `chase_engine::EngineState` — the columnar
//! [`Instance`], the incrementally maintained trigger pool and dead-trigger
//! memo, and the compiled `chase-plan` plan cache — and keeps all of it
//! alive across update batches. [`ChaseSession::apply`] ingests a batch of
//! base facts and continues the chase *semi-naively from the batch delta*:
//! only constraints whose bodies can see the new atoms are re-matched, only
//! pooled triggers whose heads the new atoms may have satisfied are
//! revalidated, and plans recompile only when the batch actually moves the
//! instance's statistics epoch. A from-scratch re-chase after every batch —
//! the cold path the `session_updates` bench compares against — redoes all
//! of that work per batch.
//!
//! Because trigger selection stays canonical inside the engine, a session
//! that applies batches `B1..Bn` runs *some* legal chase sequence of
//! `B1 ∪ … ∪ Bn`; on terminating workloads its result is a universal model
//! of the accumulated facts, so its core is isomorphic to the core of the
//! from-scratch chase (pinned by `tests/session_equivalence.rs` at the
//! workspace root) and certain answers agree exactly.

use crate::wal::{self, DurabilityConfig, DurabilityStats, Wal};
use chase_core::fx::FxHashMap;
use chase_core::{Atom, ConjunctiveQuery, ConstraintSet, CoreError, Instance, Term};
use chase_engine::{chase_resume, ChaseConfig, ChaseMode, EngineState, StopReason};
use chase_obs::{Phase, Recorder, RegistrySnapshot};
use chase_sqo::minimal_rewritings;
use std::fmt;
use std::io;
use std::ops::Deref;
use std::path::{Path, PathBuf};

/// Session configuration: the engine configuration used for every warm
/// re-chase, plus the query-rewriting policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionConfig {
    /// The chase configuration each [`ChaseSession::apply`] resumes under.
    /// Budgets (`max_steps`, `max_nulls`) apply per batch, not cumulatively.
    pub chase: ChaseConfig,
    /// Route queries through `chase-sqo` rewriting when beneficial (a
    /// strictly smaller Σ-equivalent body exists). Rewriting decisions are
    /// cached per query text, so the universal-plan chase runs once per
    /// distinct query, not once per call.
    pub use_sqo: bool,
    /// Budgeted configuration for the rewriting pipeline's own chases
    /// (freezing and chasing the query — guarded, because that chase need
    /// not terminate even when the data chase does).
    pub sqo_chase: ChaseConfig,
    /// Refuse exhaustive subquery enumeration above this universal-plan
    /// size (see `chase_sqo::equivalent_subqueries`).
    pub sqo_max_plan_atoms: usize,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            chase: ChaseConfig::default(),
            use_sqo: true,
            sqo_chase: ChaseConfig::with_max_steps(500),
            sqo_max_plan_atoms: 10,
        }
    }
}

/// What one [`ChaseSession::apply`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaseOutcome {
    /// Why the warm re-chase stopped. [`StopReason::Satisfied`] means the
    /// session is quiescent again; `Failed`/`MonitorAbort` poison the
    /// session (later calls return [`ServeError::Poisoned`]).
    pub reason: StopReason,
    /// Chase steps fired for this batch.
    pub steps: usize,
    /// Fresh nulls invented for this batch.
    pub fresh_nulls: usize,
    /// Batch facts that were actually new (duplicates cost nothing: no
    /// pool work, no statistics movement, no plan recompiles).
    pub new_facts: usize,
    /// Total facts in the chased instance after this batch.
    pub total_facts: usize,
    /// 1-based index of this batch in the session's update stream. (The
    /// session's batch counter — distinct from the instance's
    /// `stats_epoch`, which only moves when the data doubles.)
    pub epoch: u64,
}

/// One coherent reading of a session's counters, taken at a single point
/// in time — the redesigned replacement for seven scalar getters, and
/// *verbatim* the wire protocol's `Stats` response (see
/// [`crate::proto::Response::Stats`]), so the REPL client, the server and
/// the load-generator bench all print the same numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStats {
    /// Batches applied so far (the session's epoch counter — distinct from
    /// the instance's `stats_epoch`, which only moves when the data
    /// doubles).
    pub epoch: u64,
    /// Facts in the chased instance right now.
    pub total_facts: u64,
    /// Chase steps fired across every batch.
    pub total_steps: u64,
    /// Join-plan cache recompiles since the session started — the
    /// plan-cache-reuse observable (duplicate-only batches must leave this
    /// unchanged).
    pub plan_recompiles: u64,
    /// Facts rewritten in place by EGD merges across every batch — the
    /// cumulative size of the merge deltas the engine repaired its trigger
    /// pool from (no pool rebuilds).
    pub merge_rewritten: u64,
    /// Facts that collapsed onto an existing duplicate during EGD merges
    /// across every batch.
    pub merge_collapsed: u64,
    /// Why the most recent apply/query chase stopped, if any ran yet.
    pub last_reason: Option<StopReason>,
    /// Is the session fully chased (no pending triggers, not poisoned)?
    pub quiescent: bool,
}

impl fmt::Display for SessionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epochs {}, facts {}, total steps {}, merge rewritten {}, merge collapsed {}, \
             plan recompiles {}, quiescent {}, last stop {}",
            self.epoch,
            self.total_facts,
            self.total_steps,
            self.merge_rewritten,
            self.merge_collapsed,
            self.plan_recompiles,
            self.quiescent,
            match &self.last_reason {
                Some(r) => format!("{r:?}"),
                None => "-".to_string(),
            }
        )
    }
}

/// Options for [`ChaseSession::query`] — how a conjunctive query is
/// answered. The default is the certain-answer projection with `chase-sqo`
/// rewriting enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOpts {
    /// Keep answer tuples containing labeled nulls (the full evaluation)
    /// instead of projecting down to the certain answers.
    pub all: bool,
    /// Route through `chase-sqo` join-elimination rewriting when the
    /// session is quiescent and a strictly smaller Σ-equivalent body
    /// exists. Decisions are cached per query text.
    pub sqo: bool,
}

impl Default for QueryOpts {
    fn default() -> QueryOpts {
        QueryOpts {
            all: false,
            sqo: true,
        }
    }
}

impl QueryOpts {
    /// Certain answers only (the default).
    pub fn certain() -> QueryOpts {
        QueryOpts::default()
    }

    /// The full evaluation: answer tuples containing labeled nulls are kept.
    pub fn all_tuples() -> QueryOpts {
        QueryOpts {
            all: true,
            ..QueryOpts::default()
        }
    }

    /// Disable `chase-sqo` rewriting for this query.
    pub fn without_sqo(mut self) -> QueryOpts {
        self.sqo = false;
        self
    }
}

/// A query plus its options — the one argument of [`ChaseSession::query`].
///
/// Built implicitly from `&cq` (default options) or `(&cq, opts)`, so the
/// common call stays a one-liner while every option remains reachable
/// through the same entry point:
///
/// ```
/// # use chase_core::{ConjunctiveQuery, ConstraintSet};
/// # use chase_serve::{ChaseSession, QueryOpts};
/// # let mut s = ChaseSession::new(ConstraintSet::parse("S(X) -> E(X,Y)").unwrap());
/// # let q = ConjunctiveQuery::parse("q(X,Y) <- E(X,Y)").unwrap();
/// let certain = s.query(&q).unwrap();                          // defaults
/// let full = s.query((&q, QueryOpts::all_tuples())).unwrap();  // with nulls
/// assert!(certain.len() <= full.len());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct QuerySpec<'q> {
    /// The conjunctive query to answer.
    pub q: &'q ConjunctiveQuery,
    /// How to answer it.
    pub opts: QueryOpts,
}

impl<'q> From<&'q ConjunctiveQuery> for QuerySpec<'q> {
    fn from(q: &'q ConjunctiveQuery) -> QuerySpec<'q> {
        QuerySpec {
            q,
            opts: QueryOpts::default(),
        }
    }
}

impl<'q> From<(&'q ConjunctiveQuery, QueryOpts)> for QuerySpec<'q> {
    fn from((q, opts): (&'q ConjunctiveQuery, QueryOpts)) -> QuerySpec<'q> {
        QuerySpec { q, opts }
    }
}

/// Errors of the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The session hit a terminal stop earlier — an EGD failure or a
    /// monitor abort — and cannot chase or answer further. Restore a
    /// [`SessionSnapshot`] taken before the poisoning batch to recover.
    Poisoned(StopReason),
    /// Batch rejected: a non-ground atom. The batch was not applied.
    Core(chase_core::CoreError),
    /// The conductor refused a new session: the global session cap is
    /// already reached.
    Capacity {
        /// The configured cap.
        max_sessions: usize,
    },
    /// No session with this id exists (never created, or already closed).
    UnknownSession(u64),
    /// No snapshot with this id exists on the addressed session.
    UnknownSnapshot(u64),
    /// The session's actor is gone (its thread exited or panicked); the
    /// session can no longer be addressed.
    SessionGone,
    /// A durability operation failed: the write-ahead log or a snapshot
    /// could not be read or written, a durable directory's manifest does
    /// not match the requested session, or the log itself is inconsistent
    /// (an epoch discontinuity, records after a poisoning batch). Carries
    /// a rendered description rather than the `io::Error` so the error
    /// type stays `Clone + PartialEq` for the wire protocol.
    Durability(String),
    /// The session idled past the conductor's `evict_after` TTL and, being
    /// non-durable, was discarded. (A durable session warm-restarts
    /// transparently instead of ever surfacing this.)
    Evicted(u64),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Poisoned(r) => write!(f, "session poisoned by terminal stop {r:?}"),
            ServeError::Core(e) => write!(f, "{e}"),
            ServeError::Capacity { max_sessions } => {
                write!(f, "session cap reached ({max_sessions} sessions)")
            }
            ServeError::UnknownSession(id) => write!(f, "no session {id}"),
            ServeError::UnknownSnapshot(id) => write!(f, "no snapshot {id}"),
            ServeError::SessionGone => write!(f, "session actor is gone"),
            ServeError::Durability(msg) => write!(f, "durability: {msg}"),
            ServeError::Evicted(id) => write!(
                f,
                "session {id} was evicted after idling past the server's TTL \
                 (non-durable state discarded)"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<chase_core::CoreError> for ServeError {
    fn from(e: chase_core::CoreError) -> ServeError {
        ServeError::Core(e)
    }
}

/// A point-in-time copy of a session's full engine state — instance,
/// trigger pool, memos, plan cache, and counters. Restoring one rewinds
/// the session exactly (continued runs are bit-identical to the original
/// timeline); cloning a session ([`ChaseSession::fork`]) is the same
/// operation without the handle indirection.
///
/// A snapshot *is* a frozen session: it dereferences to [`ChaseSession`],
/// so every read accessor (`instance`, `constraints`, `config`, `stats`)
/// is written once on the session and available on both. The constraint
/// set and session configuration travel inside the frozen session —
/// [`ChaseSession::restore`] checks them, because engine state is indexed
/// by constraint position and its memos depend on the chase mode, so
/// restoring under other semantics would silently corrupt matching.
#[derive(Clone)]
pub struct SessionSnapshot(ChaseSession);

impl Deref for SessionSnapshot {
    type Target = ChaseSession;

    fn deref(&self) -> &ChaseSession {
        &self.0
    }
}

/// Events retained per session by the engine's telemetry ring.
const SESSION_EVENT_RING: usize = 256;

/// A long-lived incremental chase session. See the [module docs](self).
///
/// # Examples
///
/// ```
/// use chase_core::{ConjunctiveQuery, ConstraintSet, Instance, Term};
/// use chase_serve::ChaseSession;
///
/// let sigma = ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
/// let mut session = ChaseSession::new(sigma);
/// session.apply(Instance::parse("E(a,b).").unwrap().atoms()).unwrap();
/// let out = session.apply(Instance::parse("E(b,c).").unwrap().atoms()).unwrap();
/// assert_eq!(out.steps, 1); // warm: only the new join fires
///
/// let q = ConjunctiveQuery::parse("reach(X) <- E(a,X)").unwrap();
/// let reach = session.query(&q).unwrap();
/// assert_eq!(reach.len(), 2); // b and c
/// ```
pub struct ChaseSession {
    set: ConstraintSet,
    cfg: SessionConfig,
    state: EngineState,
    epoch: u64,
    last_reason: Option<StopReason>,
    /// Per-query rewriting decisions: query text → the strictly smaller
    /// Σ-equivalent rewriting chosen for it, or `None` when rewriting is
    /// not beneficial (or the rewriting chase was cut off). Survives
    /// across epochs — the constraint set never changes under a session.
    rewrites: FxHashMap<String, Option<ConjunctiveQuery>>,
    /// The durability attachment (WAL handle, snapshot thresholds,
    /// counters), present on sessions built with [`SessionBuilder::durable`]
    /// or reopened with [`ChaseSession::open`]. Boxed: most sessions are
    /// in-memory and pay one pointer for the feature.
    durable: Option<Box<Durable>>,
}

/// Everything a durable session owns beyond its in-memory state.
struct Durable {
    dir: PathBuf,
    wal: Wal,
    cfg: DurabilityConfig,
    stats: DurabilityStats,
    /// Batches applied since the last snapshot (compaction trigger).
    batches_since_snapshot: u32,
}

impl Clone for ChaseSession {
    /// Clones (and therefore [`ChaseSession::fork`]s and
    /// [`ChaseSession::snapshot`]s) are **in-memory**: the write-ahead log
    /// stays with the original session. Two sessions appending to one log
    /// would interleave incompatible histories, so the copy simply is not
    /// durable — persist a fork by building it a durable directory of its
    /// own.
    fn clone(&self) -> ChaseSession {
        ChaseSession {
            set: self.set.clone(),
            cfg: self.cfg.clone(),
            state: self.state.clone(),
            epoch: self.epoch,
            last_reason: self.last_reason.clone(),
            rewrites: self.rewrites.clone(),
            durable: None,
        }
    }
}

/// Builder for a [`ChaseSession`] — the one construction path behind
/// [`ChaseSession::new`] and [`ChaseSession::with_config`]:
///
/// ```
/// use chase_core::{ConstraintSet, Instance};
/// use chase_serve::{ChaseSession, SessionConfig};
///
/// let set = ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
/// let session = ChaseSession::builder(set)
///     .config(SessionConfig::default())
///     .instance(&Instance::parse("E(a,b). E(b,c).").unwrap())
///     .build();
/// assert_eq!(session.instance().len(), 2); // seeded, not yet chased
/// ```
#[derive(Clone)]
pub struct SessionBuilder {
    set: ConstraintSet,
    cfg: SessionConfig,
    instance: Instance,
    durable_dir: Option<PathBuf>,
    durability: DurabilityConfig,
}

impl SessionBuilder {
    /// Use `cfg` as the session configuration (default:
    /// [`SessionConfig::default`]).
    pub fn config(mut self, cfg: SessionConfig) -> SessionBuilder {
        self.cfg = cfg;
        self
    }

    /// Override just the chase configuration, keeping the rest of the
    /// session configuration as currently set.
    pub fn chase(mut self, chase: ChaseConfig) -> SessionBuilder {
        self.cfg.chase = chase;
        self
    }

    /// Seed the session with `instance` (taken as base facts; the first
    /// [`ChaseSession::apply`] or [`ChaseSession::query`] chases them).
    pub fn instance(mut self, instance: &Instance) -> SessionBuilder {
        self.instance = instance.clone();
        self
    }

    /// Make the session durable in directory `dir` (created if missing).
    ///
    /// A fresh directory gets a `MANIFEST` (the constraint set and full
    /// session configuration) and an empty write-ahead log; from then on
    /// every applied batch is logged before it is applied, and snapshots
    /// compact the log per the [`DurabilityConfig`] thresholds. A directory
    /// that already holds a manifest is **resumed**: the manifest must
    /// match the builder's constraint set and configuration exactly, the
    /// builder must not also seed an instance, and the built session comes
    /// back warm — newest valid snapshot loaded, WAL-since-snapshot
    /// replayed ([`ChaseSession::open`] is the shorthand that reads the
    /// manifest instead of requiring Σ up front).
    ///
    /// ```
    /// use chase_core::{ConstraintSet, Instance};
    /// use chase_serve::{ChaseSession, ServeError};
    ///
    /// let dir = std::env::temp_dir().join(format!("chase-doc-durable-{}", std::process::id()));
    /// let sigma = ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
    /// let mut s = ChaseSession::builder(sigma).durable(&dir).try_build()?;
    /// s.apply(Instance::parse("E(a,b). E(b,c).").unwrap().atoms())?;
    /// drop(s); // or crash — the batch is already on disk
    ///
    /// let reopened = ChaseSession::open(&dir)?;
    /// assert_eq!(reopened.stats().epoch, 1);
    /// # std::fs::remove_dir_all(&dir).unwrap();
    /// # Ok::<(), ServeError>(())
    /// ```
    pub fn durable(mut self, dir: impl Into<PathBuf>) -> SessionBuilder {
        self.durable_dir = Some(dir.into());
        self
    }

    /// Tune fsync policy and snapshot-compaction thresholds (only
    /// meaningful together with [`SessionBuilder::durable`]).
    pub fn durability(mut self, cfg: DurabilityConfig) -> SessionBuilder {
        self.durability = cfg;
        self
    }

    /// Build the session.
    ///
    /// # Panics
    /// Panics if the builder is durable and setting up or resuming the
    /// durable directory fails; use [`SessionBuilder::try_build`] to handle
    /// that as an error.
    pub fn build(self) -> ChaseSession {
        self.try_build().expect("building the session failed")
    }

    /// Build the session, reporting durability problems as
    /// [`ServeError::Durability`] instead of panicking. Infallible for
    /// in-memory builders.
    pub fn try_build(self) -> Result<ChaseSession, ServeError> {
        let Some(dir) = self.durable_dir else {
            return Ok(build_in_memory(self.set, self.cfg, &self.instance));
        };
        std::fs::create_dir_all(&dir).map_err(dur_err)?;
        match wal::read_manifest(&dir).map_err(ServeError::Durability)? {
            Some((set, cfg)) => {
                if set != self.set {
                    return Err(ServeError::Durability(format!(
                        "{} was created under a different constraint set",
                        dir.display()
                    )));
                }
                if cfg != self.cfg {
                    return Err(ServeError::Durability(format!(
                        "{} was created under a different session configuration",
                        dir.display()
                    )));
                }
                if !self.instance.is_empty() {
                    return Err(ServeError::Durability(
                        "cannot seed an instance into an existing durable directory \
                         (its log already determines the state)"
                            .to_string(),
                    ));
                }
                ChaseSession::open_inner(dir, set, cfg, self.durability)
            }
            None => {
                wal::write_manifest(&dir, &self.set, &self.cfg).map_err(dur_err)?;
                let (wal, records, _) = Wal::open(&dir).map_err(dur_err)?;
                debug_assert!(records.is_empty(), "fresh durable dir has a non-empty WAL");
                let mut session = build_in_memory(self.set, self.cfg, &self.instance);
                // A seeded instance is covered by an immediate snapshot so
                // reopen reconstructs it (seeds never pass through the WAL).
                let mut durable = Durable {
                    dir,
                    wal,
                    cfg: self.durability,
                    stats: DurabilityStats::default(),
                    batches_since_snapshot: 0,
                };
                if !session.state.instance().is_empty() {
                    wal::write_snapshot(&durable.dir, 0, session.state.instance())
                        .map_err(dur_err)?;
                    durable.stats.snapshots_written = 1;
                }
                session.durable = Some(Box::new(durable));
                Ok(session)
            }
        }
    }
}

/// The in-memory construction every build path bottoms out in.
fn build_in_memory(set: ConstraintSet, cfg: SessionConfig, instance: &Instance) -> ChaseSession {
    let mut state = EngineState::new(instance, &set, &cfg.chase);
    // Sessions are long-lived and observable by construction: install a
    // live recorder (phase histograms + a bounded event ring) in place
    // of the env-gated process-global one. Recording is write-only for
    // the engine, so this cannot perturb the deterministic trace.
    state.set_recorder(Recorder::enabled(SESSION_EVENT_RING));
    ChaseSession {
        set,
        cfg,
        state,
        epoch: 0,
        last_reason: None,
        rewrites: FxHashMap::default(),
        durable: None,
    }
}

/// Render an `io::Error` into the serve layer's clonable error type.
fn dur_err(e: io::Error) -> ServeError {
    ServeError::Durability(e.to_string())
}

impl ChaseSession {
    /// Start building a session over `set`; see [`SessionBuilder`].
    pub fn builder(set: ConstraintSet) -> SessionBuilder {
        SessionBuilder {
            set,
            cfg: SessionConfig::default(),
            instance: Instance::new(),
            durable_dir: None,
            durability: DurabilityConfig::default(),
        }
    }

    /// A session over the empty instance with the default configuration —
    /// the one-liner for `builder(set).build()`.
    pub fn new(set: ConstraintSet) -> ChaseSession {
        ChaseSession::builder(set).build()
    }

    /// A session over the empty instance with an explicit configuration —
    /// shorthand for `builder(set).config(cfg).build()`.
    pub fn with_config(set: ConstraintSet, cfg: SessionConfig) -> ChaseSession {
        ChaseSession::builder(set).config(cfg).build()
    }

    /// Reopen a durable session from its directory — the warm-restart
    /// entry point. The constraint set and session configuration come from
    /// the directory's `MANIFEST`; the state comes back by loading the
    /// newest valid snapshot and replaying the write-ahead log records past
    /// its epoch through the ordinary warm apply path (timed under the
    /// `wal_replay` phase). A torn or corrupt log tail is truncated
    /// (those records were never acknowledged); an unreadable snapshot is
    /// skipped in favor of an older one or full replay.
    ///
    /// ```
    /// use chase_core::{ConjunctiveQuery, ConstraintSet, Instance};
    /// use chase_serve::{ChaseSession, ServeError};
    ///
    /// let dir = std::env::temp_dir().join(format!("chase-doc-open-{}", std::process::id()));
    /// let sigma = ConstraintSet::parse("rail(X,Y,D) -> rail(Y,X,D)").unwrap();
    /// let mut s = ChaseSession::builder(sigma).durable(&dir).try_build()?;
    /// s.apply(Instance::parse("rail(berlin,paris,d9).").unwrap().atoms())?;
    /// drop(s); // simulate losing the process
    ///
    /// let mut back = ChaseSession::open(&dir)?;
    /// let q = ConjunctiveQuery::parse("q(X) <- rail(X,berlin,D)").unwrap();
    /// assert_eq!(back.query(&q)?.len(), 1); // the symmetric closure survived
    /// assert_eq!(back.durability().unwrap().replayed_records, 1);
    /// # std::fs::remove_dir_all(&dir).unwrap();
    /// # Ok::<(), ServeError>(())
    /// ```
    ///
    /// # Errors
    /// [`ServeError::Durability`] when the directory has no manifest, the
    /// manifest or log cannot be read, or the log is inconsistent (epoch
    /// discontinuity, records following a poisoning batch).
    pub fn open(dir: impl AsRef<Path>) -> Result<ChaseSession, ServeError> {
        ChaseSession::open_with(dir, DurabilityConfig::default())
    }

    /// [`ChaseSession::open`] with explicit durability knobs for the
    /// reopened session.
    pub fn open_with(
        dir: impl AsRef<Path>,
        durability: DurabilityConfig,
    ) -> Result<ChaseSession, ServeError> {
        let dir = dir.as_ref().to_path_buf();
        let (set, cfg) = wal::read_manifest(&dir)
            .map_err(ServeError::Durability)?
            .ok_or_else(|| {
                ServeError::Durability(format!(
                    "{} is not a durable session directory (no MANIFEST)",
                    dir.display()
                ))
            })?;
        ChaseSession::open_inner(dir, set, cfg, durability)
    }

    /// The shared resume path behind [`ChaseSession::open`] and resuming
    /// [`SessionBuilder::durable`] builds.
    fn open_inner(
        dir: PathBuf,
        set: ConstraintSet,
        cfg: SessionConfig,
        durability: DurabilityConfig,
    ) -> Result<ChaseSession, ServeError> {
        let (wal, records, truncated_bytes) = Wal::open(&dir).map_err(dur_err)?;
        let loaded = wal::load_newest_snapshot(&dir);
        let loaded_snapshot = loaded.is_some();
        let (snapshot_epoch, seed) = loaded.unwrap_or_else(|| (0, Instance::new()));
        let mut session = build_in_memory(set, cfg, &seed);
        session.epoch = snapshot_epoch;
        let mut replayed_records = 0u64;
        let recorder = session.state.recorder().clone();
        {
            for record in &records {
                if record.epoch <= snapshot_epoch {
                    // Covered by the snapshot: a crash between writing the
                    // snapshot and truncating the log leaves this overlap.
                    continue;
                }
                // One wal_replay sample per record, so the phase count in
                // the metrics exposition *is* the replayed-record count.
                let _t = recorder.phase(Phase::WalReplay);
                if session.state.poisoned().is_some() {
                    return Err(ServeError::Durability(format!(
                        "WAL records continue past the poisoning batch at epoch {}",
                        session.epoch
                    )));
                }
                if record.epoch != session.epoch + 1 {
                    return Err(ServeError::Durability(format!(
                        "WAL epoch discontinuity: expected {}, found {}",
                        session.epoch + 1,
                        record.epoch
                    )));
                }
                let batch = Instance::parse(&record.batch)
                    .map_err(|e| {
                        ServeError::Durability(format!(
                            "WAL record for epoch {} does not parse: {e}",
                            record.epoch
                        ))
                    })?
                    .atoms();
                session.apply_inner(batch)?;
                replayed_records += 1;
            }
        }
        session.durable = Some(Box::new(Durable {
            dir,
            wal,
            cfg: durability,
            stats: DurabilityStats {
                replayed_records,
                truncated_bytes,
                loaded_snapshot,
                snapshot_epoch,
                ..DurabilityStats::default()
            },
            batches_since_snapshot: 0,
        }));
        Ok(session)
    }

    /// Is this session durable (building it attached a write-ahead log)?
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The durability counters (`None` on an in-memory session): WAL
    /// appends/bytes/fsyncs from this process, what the open replayed or
    /// truncated, snapshots written. Also exported by
    /// [`ChaseSession::metrics_snapshot`] as `chase_wal_*` /
    /// `chase_snapshot*` series.
    pub fn durability(&self) -> Option<DurabilityStats> {
        self.durable.as_ref().map(|d| d.stats)
    }

    /// Force a durability point now: write a snapshot at the current epoch
    /// and compact the write-ahead log (the REPL's `\persist`). Returns the
    /// epoch the on-disk state now covers.
    ///
    /// Oblivious-mode sessions cannot snapshot chased state (resuming an
    /// oblivious engine from a bare instance would re-fire old triggers),
    /// so for them `persist` flushes the log instead — same durability,
    /// replay-from-log recovery. A poisoned Standard session likewise only
    /// flushes: the poisoning is reproduced at reopen by replaying its
    /// batch rather than baked into a snapshot.
    ///
    /// # Errors
    /// [`ServeError::Durability`] if the session is not durable or the
    /// snapshot/flush fails (a failed snapshot loses nothing: the log
    /// still holds every batch).
    pub fn persist(&mut self) -> Result<u64, ServeError> {
        if self.durable.is_none() {
            return Err(ServeError::Durability(
                "session is not durable (build it with SessionBuilder::durable)".to_string(),
            ));
        }
        if self.cfg.chase.mode == ChaseMode::Oblivious || self.state.poisoned().is_some() {
            let d = self.durable.as_mut().unwrap();
            d.wal.fsync().map_err(dur_err)?;
            d.stats.wal_fsyncs += 1;
            return Ok(self.epoch);
        }
        self.snapshot_to_disk().map_err(dur_err)?;
        Ok(self.epoch)
    }

    /// Write `snapshot-<epoch>.csnp` for the current state, then compact:
    /// drop every WAL record (all are ≤ the snapshot's epoch), remove
    /// snapshots from abandoned futures (restore rewinds the epoch), prune
    /// old generations. Callers decide whether a failure is fatal.
    fn snapshot_to_disk(&mut self) -> io::Result<()> {
        let d = self
            .durable
            .as_mut()
            .expect("snapshot_to_disk on in-memory session");
        wal::write_snapshot(&d.dir, self.epoch, self.state.instance())?;
        wal::remove_snapshots_above(&d.dir, self.epoch);
        d.wal.truncate_all()?;
        wal::prune_snapshots(&d.dir, d.cfg.keep_snapshots);
        d.stats.snapshots_written += 1;
        d.stats.snapshot_epoch = self.epoch;
        d.batches_since_snapshot = 0;
        Ok(())
    }

    /// Count this batch against the compaction thresholds and snapshot if
    /// one is due. Snapshot failures are counted, not raised — the WAL
    /// still holds everything, so a missed compaction costs replay time at
    /// the next open, never data.
    fn maybe_snapshot(&mut self) {
        if self.cfg.chase.mode == ChaseMode::Oblivious || self.state.poisoned().is_some() {
            return;
        }
        let Some(d) = self.durable.as_mut() else {
            return;
        };
        d.batches_since_snapshot += 1;
        let cfg = d.cfg;
        let due = (cfg.snapshot_every_batches > 0
            && d.batches_since_snapshot >= cfg.snapshot_every_batches)
            || (cfg.snapshot_every_bytes > 0 && d.wal.len() >= cfg.snapshot_every_bytes);
        if due && self.snapshot_to_disk().is_err() {
            let d = self.durable.as_mut().unwrap();
            d.stats.snapshot_errors += 1;
        }
    }

    /// The constraint set the session chases under.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.set
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// The current (chased-so-far) instance.
    pub fn instance(&self) -> &Instance {
        self.state.instance()
    }

    /// The terminal stop that poisoned the session, if any.
    pub fn poisoned(&self) -> Option<&StopReason> {
        self.state.poisoned()
    }

    /// One coherent snapshot of every session counter — epochs, steps,
    /// merge work, plan recompiles, quiescence, and the last stop reason.
    /// This is the only counter accessor; it is also, verbatim, the wire
    /// protocol's `Stats` response.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            epoch: self.epoch,
            total_facts: self.state.instance().len() as u64,
            total_steps: self.state.total_steps() as u64,
            plan_recompiles: self.state.matcher().recompile_count(),
            merge_rewritten: self.state.total_merge_rewritten() as u64,
            merge_collapsed: self.state.total_merge_collapsed() as u64,
            last_reason: self.last_reason.clone(),
            quiescent: self.state.quiescent(),
        }
    }

    /// Insert a batch of ground base facts and continue the chase warm,
    /// semi-naively from the batch delta. Returns what happened; see
    /// [`ChaseOutcome`]. An empty or all-duplicate batch still counts an
    /// epoch but performs no matching work and recompiles no plans.
    ///
    /// On a durable session the batch is **logged first**: it is appended
    /// to the write-ahead log (and fsynced, per the [`FsyncPolicy`]) before
    /// any of it is applied, so a crash at any point leaves either a log
    /// that replays the batch or one that never mentions it — never a
    /// half-applied state. [`ServeError::Durability`] on a durable apply
    /// means the batch was not applied.
    ///
    /// # Errors
    ///
    /// [`ServeError::Poisoned`] if an earlier batch ended in an EGD failure
    /// or monitor abort; [`ServeError::Core`] (batch unapplied) if the
    /// batch contains a non-ground atom.
    ///
    /// [`FsyncPolicy`]: crate::wal::FsyncPolicy
    pub fn apply(
        &mut self,
        batch: impl IntoIterator<Item = Atom>,
    ) -> Result<ChaseOutcome, ServeError> {
        if self.durable.is_none() {
            return self.apply_inner(batch);
        }
        if let Some(r) = self.state.poisoned() {
            return Err(ServeError::Poisoned(r.clone()));
        }
        let batch: Vec<Atom> = batch.into_iter().collect();
        // Validate groundness *before* the append so a rejected batch never
        // reaches the log: every logged record corresponds to exactly one
        // applied epoch, which is what lets replay assert epoch continuity.
        if let Some(bad) = batch.iter().find(|a| !a.is_ground()) {
            return Err(ServeError::Core(CoreError::NonGroundAtom(bad.to_string())));
        }
        let text = render_batch(&batch);
        let recorder = self.state.recorder().clone();
        {
            let d = self.durable.as_mut().unwrap();
            let bytes = {
                let _t = recorder.phase(Phase::WalAppend);
                d.wal.append(self.epoch + 1, &text).map_err(dur_err)?
            };
            d.stats.wal_appends += 1;
            d.stats.wal_bytes += bytes;
            if d.wal.fsync_due(d.cfg.fsync) {
                let _t = recorder.phase(Phase::WalFsync);
                d.wal.fsync().map_err(dur_err)?;
                d.stats.wal_fsyncs += 1;
            }
        }
        let out = self.apply_inner(batch)?;
        self.maybe_snapshot();
        Ok(out)
    }

    /// The in-memory apply: the whole of a non-durable [`ChaseSession::apply`],
    /// and the part of a durable one that runs *after* the write-ahead
    /// append — which is exactly why WAL replay goes through it.
    fn apply_inner(
        &mut self,
        batch: impl IntoIterator<Item = Atom>,
    ) -> Result<ChaseOutcome, ServeError> {
        if let Some(r) = self.state.poisoned() {
            return Err(ServeError::Poisoned(r.clone()));
        }
        let added = self.state.insert_batch(&self.set, &self.cfg.chase, batch)?;
        let out = chase_resume(&mut self.state, &self.set, &self.cfg.chase);
        self.epoch += 1;
        self.last_reason = Some(out.reason.clone());
        Ok(ChaseOutcome {
            reason: out.reason,
            steps: out.steps,
            fresh_nulls: out.fresh_nulls,
            new_facts: added.len(),
            total_facts: self.state.instance().len(),
            epoch: self.epoch,
        })
    }

    /// Answer a conjunctive query against the chased instance — the single
    /// query entry point. Pass `&q` for the defaults (certain answers,
    /// `chase-sqo` routing on) or `(&q, opts)` to select the full
    /// evaluation or disable rewriting; see [`QuerySpec`] and [`QueryOpts`].
    ///
    /// By default the result is the *certain-answer* projection: answer
    /// tuples free of labeled nulls, sorted and deduplicated. With
    /// [`QueryOpts::all_tuples`] tuples containing labeled nulls are kept
    /// (the full evaluation).
    ///
    /// Pending work (a freshly seeded session, or a previous budget stop)
    /// is chased first, so queries always see the most-chased state. When
    /// the session is quiescent the result is exactly the certain answers
    /// of the accumulated base facts under Σ; after a budget stop the
    /// result is still *sound* (every returned tuple is a certain answer)
    /// but may be incomplete.
    ///
    /// With [`QueryOpts::sqo`] *and* [`SessionConfig::use_sqo`] (both
    /// default), evaluation on a quiescent instance is routed through
    /// `chase-sqo`: if a strictly smaller Σ-equivalent rewriting of the
    /// query exists, the rewriting is evaluated instead — same answers
    /// (the instance satisfies Σ), fewer joins. Decisions are cached per
    /// query text.
    ///
    /// # Errors
    /// [`ServeError::Poisoned`] on a failed/aborted session.
    pub fn query<'q>(
        &mut self,
        spec: impl Into<QuerySpec<'q>>,
    ) -> Result<Vec<Vec<Term>>, ServeError> {
        let QuerySpec { q, opts } = spec.into();
        self.quiesce()?;
        let target = if opts.sqo { self.rewritten(q) } else { None };
        let target = target.unwrap_or_else(|| q.clone());
        Ok(if opts.all {
            target.evaluate(self.state.instance())
        } else {
            target.evaluate_certain(self.state.instance())
        })
    }

    /// Chase pending work before answering (no-op when quiescent).
    fn quiesce(&mut self) -> Result<(), ServeError> {
        if let Some(r) = self.state.poisoned() {
            return Err(ServeError::Poisoned(r.clone()));
        }
        if !self.state.quiescent() {
            let out = chase_resume(&mut self.state, &self.set, &self.cfg.chase);
            self.last_reason = Some(out.reason.clone());
            if let Some(r) = self.state.poisoned() {
                return Err(ServeError::Poisoned(r.clone()));
            }
        }
        Ok(())
    }

    /// The cached rewriting decision for `q` (computing and caching it on
    /// first sight). `None` = evaluate `q` itself.
    fn rewritten(&mut self, q: &ConjunctiveQuery) -> Option<ConjunctiveQuery> {
        if !self.cfg.use_sqo || !self.state.quiescent() {
            // A non-quiescent instance need not satisfy Σ, and Σ-equivalent
            // rewritings only agree on instances that do.
            return None;
        }
        let key = q.to_string();
        if let Some(cached) = self.rewrites.get(&key) {
            return cached.clone();
        }
        let choice = choose_rewriting(q, &self.set, &self.cfg);
        self.rewrites.insert(key, choice.clone());
        choice
    }

    /// The telemetry recorder the session's engine reports into. All
    /// snapshots and forks of a session share one recorder (telemetry is
    /// not part of the rewindable state — restoring a snapshot does not
    /// rewind the histograms).
    pub fn recorder(&self) -> &Recorder {
        self.state.recorder()
    }

    /// The session's metrics as a mergeable registry snapshot: per-phase
    /// engine latency histograms (`chase_phase_ns{phase="…"}`) plus the
    /// headline counters from [`ChaseSession::stats`]. The conductor merges
    /// these across sessions into the server-wide exposition.
    ///
    /// ```
    /// use chase_core::{ConstraintSet, Instance};
    /// use chase_serve::ChaseSession;
    ///
    /// let mut s = ChaseSession::new(ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap());
    /// s.apply(Instance::parse("E(a,b). E(b,c).").unwrap().atoms()).unwrap();
    /// let snap = s.metrics_snapshot();
    /// assert_eq!(snap.counter("chase_session_epochs_total"), Some(1));
    /// let inserts = snap.histogram("chase_phase_ns{phase=\"insert\"}").unwrap();
    /// assert!(inserts.count() > 0, "the transitive step was timed");
    /// ```
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        let mut snap = RegistrySnapshot::new();
        let stats = self.stats();
        snap.set_counter("chase_session_epochs_total", stats.epoch);
        snap.set_counter("chase_session_steps_total", stats.total_steps);
        snap.set_counter("chase_session_plan_recompiles_total", stats.plan_recompiles);
        snap.set_counter("chase_session_merge_rewritten_total", stats.merge_rewritten);
        snap.set_counter("chase_session_merge_collapsed_total", stats.merge_collapsed);
        snap.set_gauge("chase_session_facts", stats.total_facts as i64);
        let rec = self.state.recorder();
        rec.export_phases("chase_phase_ns", &mut snap);
        snap.set_counter("chase_events_dropped_total", rec.events_dropped());
        if let Some(d) = &self.durable {
            snap.set_counter("chase_wal_appends_total", d.stats.wal_appends);
            snap.set_counter("chase_wal_bytes_total", d.stats.wal_bytes);
            snap.set_counter("chase_wal_fsyncs_total", d.stats.wal_fsyncs);
            snap.set_counter("chase_wal_replayed_total", d.stats.replayed_records);
            snap.set_counter("chase_wal_truncated_bytes_total", d.stats.truncated_bytes);
            snap.set_counter("chase_snapshots_total", d.stats.snapshots_written);
            snap.set_counter("chase_snapshot_errors_total", d.stats.snapshot_errors);
            snap.set_gauge("chase_snapshot_epoch", d.stats.snapshot_epoch as i64);
        }
        snap
    }

    /// Snapshot the full engine state — O(instance + pool), no re-chasing
    /// or recompiling on either side of the copy.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot(self.clone())
    }

    /// Rewind the session to a snapshot (taken from this session or a
    /// fork). The rewriting cache is kept — the constraint set didn't
    /// change, so cached decisions stay valid.
    ///
    /// On a **durable** session the on-disk log must be rewound too — it
    /// records batches the restore just abandoned. Restoring re-anchors the
    /// directory: a fresh snapshot of the restored state is written and the
    /// write-ahead log is truncated, so a reopen comes back at the restored
    /// timeline.
    ///
    /// # Panics
    /// Panics if the snapshot was taken under a different constraint set
    /// or session configuration: engine state is indexed by constraint
    /// position and its memos depend on the chase mode, so restoring it
    /// under other semantics would silently corrupt trigger matching.
    /// Panics on a durable *oblivious* session — its chased state cannot be
    /// snapshotted (see [`ChaseSession::persist`]), so the on-disk log
    /// cannot be re-anchored to the restored state — and if re-anchoring
    /// fails, since continuing would let the log diverge from the state.
    pub fn restore(&mut self, snap: &SessionSnapshot) {
        if self.durable.is_some() {
            assert!(
                self.cfg.chase.mode != ChaseMode::Oblivious,
                "restore on a durable oblivious session is unsupported: \
                 its log cannot be re-anchored to the restored state"
            );
        }
        assert!(
            snap.0.set == self.set,
            "snapshot taken under a different constraint set than this session's"
        );
        assert!(
            snap.0.cfg == self.cfg,
            "snapshot taken under a different session configuration than this session's"
        );
        self.state = snap.0.state.clone();
        self.epoch = snap.0.epoch;
        self.last_reason = snap.0.last_reason.clone();
        if self.durable.is_some() {
            self.snapshot_to_disk()
                .expect("re-anchoring the durable log after restore failed");
        }
    }

    /// Fork the session: an independent session over a copy of the warm
    /// state. Cheap in the same sense as [`ChaseSession::snapshot`]. Forks
    /// of a durable session are in-memory (the log stays with the
    /// original); give a fork its own [`SessionBuilder::durable`] directory
    /// to persist it.
    pub fn fork(&self) -> ChaseSession {
        self.clone()
    }
}

/// Render a batch into the WAL's on-disk text: the fact surface syntax,
/// one `pred(args).` per atom — exactly what [`Instance::parse`] reads
/// back at replay. Labeled nulls round-trip (`_n3` ↔ null 3).
fn render_batch(batch: &[Atom]) -> String {
    let mut out = String::new();
    for atom in batch {
        out.push_str(&atom.to_string());
        out.push_str(". ");
    }
    out
}

/// The `chase-sqo` rewriting choice for `q` under `set` and the session's
/// rewriting policy: the first minimal rewriting when it is a *strict*
/// shrink of the body, `None` otherwise (or when the rewriting chase was
/// cut off). Shared by [`ChaseSession`]'s per-session cache and the
/// conductor's concurrent read path, so both route queries identically.
pub(crate) fn choose_rewriting(
    q: &ConjunctiveQuery,
    set: &ConstraintSet,
    cfg: &SessionConfig,
) -> Option<ConjunctiveQuery> {
    minimal_rewritings(q, set, &cfg.sqo_chase, cfg.sqo_max_plan_atoms)
        .ok()
        .and_then(|mut v| {
            if v.is_empty() {
                None
            } else {
                Some(v.remove(0))
            }
        })
        .filter(|r| r.body().len() < q.body().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_engine::chase;

    fn atoms(text: &str) -> Vec<Atom> {
        Instance::parse(text).unwrap().atoms()
    }

    #[test]
    fn session_chases_batches_incrementally() {
        let set = ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
        let mut s = ChaseSession::new(set.clone());
        let o1 = s.apply(atoms("E(a,b). E(b,c).")).unwrap();
        assert_eq!(o1.reason, StopReason::Satisfied);
        assert_eq!(o1.epoch, 1);
        let o2 = s.apply(atoms("E(c,d).")).unwrap();
        assert_eq!(o2.new_facts, 1);
        assert!(s.stats().quiescent);
        // Same final instance as chasing the union from scratch (null-free
        // and confluent here, so equality outright).
        let union = Instance::parse("E(a,b). E(b,c). E(c,d).").unwrap();
        let scratch = chase(&union, &set, &ChaseConfig::default());
        assert_eq!(s.instance(), &scratch.instance);
    }

    #[test]
    fn empty_and_duplicate_batches_do_no_work() {
        let set = ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
        let mut s = ChaseSession::new(set);
        s.apply(atoms("E(a,b). E(b,c). E(c,d).")).unwrap();
        let stats_epoch = s.instance().stats_epoch();
        let recompiles = s.stats().plan_recompiles;
        let facts = s.instance().len();

        let empty = s.apply(Vec::new()).unwrap();
        assert_eq!(empty.reason, StopReason::Satisfied);
        assert_eq!((empty.steps, empty.new_facts), (0, 0));

        // A batch that only duplicates existing facts (base and derived).
        let dup = s.apply(atoms("E(a,b). E(a,c).")).unwrap();
        assert_eq!((dup.steps, dup.new_facts), (0, 0));
        assert_eq!(dup.total_facts, facts);
        assert_eq!(
            s.instance().stats_epoch(),
            stats_epoch,
            "duplicates must not advance the statistics epoch"
        );
        assert_eq!(
            s.stats().plan_recompiles,
            recompiles,
            "duplicates must not recompile plans"
        );
        assert_eq!(s.stats().epoch, 3, "epochs still count the batches");
    }

    #[test]
    fn batch_after_monitor_abort_is_refused() {
        let set = ConstraintSet::parse("S(X) -> E(X,Y), S(Y)").unwrap();
        let cfg = SessionConfig {
            chase: ChaseConfig::with_monitor_depth(3),
            ..SessionConfig::default()
        };
        let mut s = ChaseSession::with_config(set, cfg);
        let out = s.apply(atoms("S(a).")).unwrap();
        assert_eq!(out.reason, StopReason::MonitorAbort { depth: 3 });
        assert_eq!(s.poisoned(), Some(&StopReason::MonitorAbort { depth: 3 }));
        let err = s.apply(atoms("S(b).")).unwrap_err();
        assert_eq!(
            err,
            ServeError::Poisoned(StopReason::MonitorAbort { depth: 3 })
        );
        let q = ConjunctiveQuery::parse("q(X) <- S(X)").unwrap();
        assert!(matches!(s.query(&q), Err(ServeError::Poisoned(_))));
    }

    #[test]
    fn egd_failure_poisons_and_snapshot_recovers() {
        let set = ConstraintSet::parse("E(X,Y), E(X,Z) -> Y = Z").unwrap();
        let mut s = ChaseSession::new(set);
        s.apply(atoms("E(a,b).")).unwrap();
        let snap = s.snapshot();
        let out = s.apply(atoms("E(a,c).")).unwrap();
        assert_eq!(out.reason, StopReason::Failed);
        assert!(matches!(s.apply(Vec::new()), Err(ServeError::Poisoned(_))));
        // Rewind before the failing batch and continue on a compatible one.
        s.restore(&snap);
        assert!(s.poisoned().is_none());
        let ok = s.apply(atoms("E(a,b). E(d,e).")).unwrap();
        assert_eq!(ok.reason, StopReason::Satisfied);
        assert_eq!(ok.new_facts, 1);
    }

    #[test]
    fn non_ground_batch_is_rejected_atomically() {
        let set = ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
        let mut s = ChaseSession::new(set);
        s.apply(atoms("E(a,b).")).unwrap();
        let facts = s.instance().len();
        let bad = vec![
            Atom::new("E", vec![Term::constant("b"), Term::constant("c")]),
            Atom::new("E", vec![Term::var("X"), Term::constant("c")]),
        ];
        assert!(matches!(s.apply(bad), Err(ServeError::Core(_))));
        assert_eq!(s.instance().len(), facts, "batch must not half-apply");
        assert_eq!(s.stats().epoch, 1, "rejected batches are not epochs");
    }

    #[test]
    fn snapshot_restore_round_trips_the_columnar_store() {
        let set = ConstraintSet::parse("S(X) -> E(X,Y)\nE(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
        let mut s = ChaseSession::new(set);
        s.apply(atoms("S(a). S(b). E(a,b).")).unwrap();
        let snap = s.snapshot();
        let frozen = s.instance().clone();
        // Diverge, then rewind.
        s.apply(atoms("S(c). E(b,c).")).unwrap();
        assert_ne!(s.instance(), &frozen);
        s.restore(&snap);
        assert_eq!(s.instance(), snap.instance());
        assert_eq!(s.instance(), &frozen);
        assert_eq!(s.stats().epoch, snap.stats().epoch);
        // The restored timeline replays identically to a fork that never
        // diverged — pool and memo state came back with the snapshot.
        let mut fork = s.fork();
        let a = s.apply(atoms("S(c). E(b,c).")).unwrap();
        let b = fork.apply(atoms("S(c). E(b,c).")).unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.fresh_nulls, b.fresh_nulls);
        assert_eq!(s.instance(), fork.instance());
    }

    #[test]
    fn merge_counters_accumulate_and_rewind_with_snapshots() {
        // F is a key: S(X) invents a null value, a later ground F collapses
        // it away. The session-level counters expose the merge deltas.
        let set = ConstraintSet::parse("S(X) -> F(X,Y)\nF(X,Y), F(X,Z) -> Y = Z").unwrap();
        let mut s = ChaseSession::new(set);
        s.apply(atoms("S(a). G(a,b).")).unwrap(); // invents F(a,_n0)
        assert_eq!(
            (s.stats().merge_rewritten, s.stats().merge_collapsed),
            (0, 0)
        );
        let snap = s.snapshot();
        // F(a,b) arrives: the EGD merges _n0 → b and F(a,_n0) collapses
        // onto the freshly inserted duplicate.
        s.apply(atoms("F(a,b).")).unwrap();
        assert!(s.stats().quiescent);
        assert_eq!(
            s.stats().merge_collapsed,
            1,
            "F(a,_n0) collapsed onto F(a,b) during the merge"
        );
        let after = (s.stats().merge_rewritten, s.stats().merge_collapsed);
        s.restore(&snap);
        assert_eq!(
            (s.stats().merge_rewritten, s.stats().merge_collapsed),
            (0, 0),
            "snapshots carry the merge counters"
        );
        s.apply(atoms("F(a,b).")).unwrap();
        assert_eq!(
            (s.stats().merge_rewritten, s.stats().merge_collapsed),
            after
        );
    }

    #[test]
    #[should_panic(expected = "different constraint set")]
    fn restoring_a_foreign_snapshot_panics() {
        let mut a = ChaseSession::new(ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap());
        let b = ChaseSession::new(ConstraintSet::parse("S(X) -> T(X)").unwrap());
        a.restore(&b.snapshot());
    }

    #[test]
    #[should_panic(expected = "different session configuration")]
    fn restoring_a_snapshot_with_other_config_panics() {
        let set = ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
        let a = ChaseSession::new(set.clone());
        let mut b = ChaseSession::with_config(
            set,
            SessionConfig {
                use_sqo: false,
                ..SessionConfig::default()
            },
        );
        b.restore(&a.snapshot());
    }

    #[test]
    fn query_answers_match_direct_evaluation_with_and_without_sqo() {
        // Rail symmetry: the two-atom query rewrites to one atom.
        let set = ConstraintSet::parse("rail(X,Y,D) -> rail(Y,X,D)").unwrap();
        let q = ConjunctiveQuery::parse("q(X) <- rail(c,X,D), rail(X,c,D)").unwrap();
        let data = "rail(c,u,d1). rail(u,v,d2). rail(c,w,d1).";
        let mk = |use_sqo: bool| {
            let cfg = SessionConfig {
                use_sqo,
                ..SessionConfig::default()
            };
            ChaseSession::with_config(set.clone(), cfg)
        };
        let mut with_sqo = mk(true);
        let mut without = mk(false);
        with_sqo.apply(atoms(data)).unwrap();
        without.apply(atoms(data)).unwrap();
        let a = with_sqo.query(&q).unwrap();
        let b = without.query(&q).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2); // u and w
                                // The rewriting decision was cached and is a strict shrink.
        let cached = with_sqo.rewrites.get(&q.to_string()).unwrap();
        assert_eq!(cached.as_ref().unwrap().body().len(), 1);
        // Second query hits the cache (no way to observe the chase from
        // here, but the cached entry must be stable).
        assert_eq!(with_sqo.query(&q).unwrap(), a);
    }

    #[test]
    fn query_on_a_seeded_session_chases_first() {
        let set = ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
        let inst = Instance::parse("E(a,b). E(b,c).").unwrap();
        let mut s = ChaseSession::builder(set).instance(&inst).build();
        assert!(!s.stats().quiescent);
        let q = ConjunctiveQuery::parse("q(X) <- E(a,X)").unwrap();
        let ans = s.query(&q).unwrap();
        assert_eq!(ans.len(), 2, "query sees the chased closure");
        assert!(s.stats().quiescent);
    }

    #[test]
    fn certain_answers_drop_null_tuples() {
        let set = ConstraintSet::parse("S(X) -> E(X,Y)").unwrap();
        let mut s = ChaseSession::new(set);
        s.apply(atoms("S(a). E(a,b).")).unwrap();
        s.apply(atoms("S(c).")).unwrap(); // invents E(c, _null)
        let q = ConjunctiveQuery::parse("q(X,Y) <- E(X,Y)").unwrap();
        let certain = s.query(&q).unwrap();
        assert_eq!(
            certain,
            vec![vec![Term::constant("a"), Term::constant("b")]]
        );
        let all = s.query((&q, QueryOpts::all_tuples())).unwrap();
        assert_eq!(all.len(), 2);
    }
}
