//! The session server's wire protocol: versioned request/response enums
//! with a hand-rolled byte codec over length-prefixed frames.
//!
//! ## Framing
//!
//! Every message travels as one *frame*:
//!
//! ```text
//! +----------------+---------+----------------+-----+------------------+
//! | u32 LE length  | version | u64 LE corr id | tag | fields ...       |
//! +----------------+---------+----------------+-----+------------------+
//!        4 bytes      1 byte       8 bytes     1 byte  length - 10 bytes
//! ```
//!
//! The length counts the payload only (version byte onward) and is capped
//! at [`MAX_FRAME`]; a peer announcing more is rejected *before* any
//! allocation. Truncated frames, unknown versions or tags, bad UTF-8 and
//! trailing bytes all surface as [`ProtoError`] values — decoding never
//! panics, whatever the bytes.
//!
//! ## Correlation and pipelining
//!
//! Since version 2 every frame carries a **u64 correlation id** between
//! the version byte and the tag. The server echoes a request's id on its
//! reply verbatim, so a client may keep any number of requests in flight
//! on one connection and associate replies by id instead of by arrival
//! order (the `Client::pipeline` batch API does exactly that). The server
//! still processes one connection's requests strictly in order — the id
//! adds association, not reordering. A version-1 peer (no correlation
//! field) is answered with one final error frame and a hangup, never
//! silence: its version byte fails the check below and the server replies
//! before closing.
//!
//! ## Encoding
//!
//! Scalars are little-endian (`u32` for lengths/counts, `u64` for ids and
//! counters), booleans one byte (`0`/`1`), strings a `u32` length followed
//! by UTF-8 bytes. Structured chase payloads — constraint sets, fact
//! batches, conjunctive queries, answer terms — are carried as *text* in
//! the workspace's own surface syntax and re-parsed server-side, so the
//! protocol inherits the parsers' validation instead of duplicating it.
//! One-line constraint sets use the `;` separator (see
//! [`chase_core::ConstraintSet::parse`]); no escaping is required.
//!
//! Counter payloads ([`SessionStats`], [`ChaseOutcome`]) are encoded
//! field-for-field, so the `Stats` response *is* the session API's
//! [`SessionStats`] — one struct, printed identically by the REPL client,
//! the server log and the load-generator bench.

use std::fmt;
use std::io::{self, Read, Write};

use chase_engine::StopReason;

use crate::session::{ChaseOutcome, QueryOpts, ServeError, SessionStats};

/// Protocol version carried in every frame. Bumped on any incompatible
/// change to the codec; a server rejects frames from a different version
/// with [`ProtoError::Version`]. Version 2 added the u64 correlation id
/// after the version byte.
pub const PROTO_VERSION: u8 = 2;

/// Hard cap on a frame's payload length (16 MiB). A declared length above
/// this is rejected before any buffer is allocated, so a hostile or
/// corrupt peer cannot drive allocation with a 4-byte header.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Everything that can go wrong reading or decoding a frame. Decoding is
/// total: malformed input yields one of these, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The stream ended mid-frame (inside the length prefix or payload).
    Truncated,
    /// The payload ran out while a field still needed bytes.
    Short,
    /// The frame announced a payload longer than [`MAX_FRAME`].
    Oversized {
        /// The declared payload length.
        len: u32,
    },
    /// The frame's version byte is not [`PROTO_VERSION`].
    Version {
        /// The version byte received.
        got: u8,
    },
    /// The message tag byte is not one this version defines.
    Tag {
        /// The tag byte received.
        got: u8,
    },
    /// A string field was not valid UTF-8.
    Utf8,
    /// The payload decoded cleanly but bytes were left over.
    Trailing {
        /// How many bytes remained.
        extra: usize,
    },
    /// The transport failed (stringified [`io::Error`], kept comparable).
    Io(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "stream ended mid-frame"),
            ProtoError::Short => write!(f, "frame payload too short for its fields"),
            ProtoError::Oversized { len } => {
                write!(f, "frame payload of {len} bytes exceeds cap of {MAX_FRAME}")
            }
            ProtoError::Version { got } => {
                write!(
                    f,
                    "protocol version {got} (this build speaks {PROTO_VERSION})"
                )
            }
            ProtoError::Tag { got } => write!(f, "unknown message tag {got}"),
            ProtoError::Utf8 => write!(f, "string field is not valid UTF-8"),
            ProtoError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> ProtoError {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtoError::Truncated
        } else {
            ProtoError::Io(e.to_string())
        }
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one frame: `u32` LE payload length, then the payload bytes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME as usize);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload. `Ok(None)` means the peer closed the stream
/// cleanly *between* frames; EOF anywhere inside a frame is
/// [`ProtoError::Truncated`]. An oversized declared length is rejected
/// without allocating.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut len = [0u8; 4];
    // Hand-rolled read loop so a clean EOF before the first byte is
    // distinguishable from one mid-prefix.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(ProtoError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(ProtoError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Byte cursor primitives
// ---------------------------------------------------------------------------

struct Writer(Vec<u8>);

impl Writer {
    fn new(tag: u8, corr: u64) -> Writer {
        let mut w = Writer(vec![PROTO_VERSION]);
        w.u64(corr);
        w.u8(tag);
        w
    }

    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.0.push(v as u8);
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Open a payload, checking the version byte and yielding the
    /// correlation id and tag.
    fn open(buf: &'a [u8]) -> Result<(u64, u8, Reader<'a>), ProtoError> {
        let mut r = Reader { buf, pos: 0 };
        let version = r.u8()?;
        if version != PROTO_VERSION {
            return Err(ProtoError::Version { got: version });
        }
        let corr = r.u64()?;
        let tag = r.u8()?;
        Ok((corr, tag, r))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Short)?;
        if end > self.buf.len() {
            return Err(ProtoError::Short);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, ProtoError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            got => Err(ProtoError::Tag { got }),
        }
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::Utf8)
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Trailing {
                extra: self.buf.len() - self.pos,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Shared sub-codecs
// ---------------------------------------------------------------------------

fn put_reason(w: &mut Writer, r: &StopReason) {
    match r {
        StopReason::Satisfied => w.u8(0),
        StopReason::Failed => w.u8(1),
        StopReason::StepLimit(n) => {
            w.u8(2);
            w.u64(*n as u64);
        }
        StopReason::NullLimit(n) => {
            w.u8(3);
            w.u64(*n as u64);
        }
        StopReason::MonitorAbort { depth } => {
            w.u8(4);
            w.u64(*depth as u64);
        }
    }
}

fn get_reason(r: &mut Reader<'_>) -> Result<StopReason, ProtoError> {
    Ok(match r.u8()? {
        0 => StopReason::Satisfied,
        1 => StopReason::Failed,
        2 => StopReason::StepLimit(r.u64()? as usize),
        3 => StopReason::NullLimit(r.u64()? as usize),
        4 => StopReason::MonitorAbort {
            depth: r.u64()? as usize,
        },
        got => return Err(ProtoError::Tag { got }),
    })
}

fn put_opt_reason(w: &mut Writer, r: &Option<StopReason>) {
    match r {
        None => w.u8(0),
        Some(r) => {
            w.u8(1);
            put_reason(w, r);
        }
    }
}

fn get_opt_reason(r: &mut Reader<'_>) -> Result<Option<StopReason>, ProtoError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(get_reason(r)?)),
        got => Err(ProtoError::Tag { got }),
    }
}

fn put_outcome(w: &mut Writer, o: &ChaseOutcome) {
    put_reason(w, &o.reason);
    w.u64(o.steps as u64);
    w.u64(o.fresh_nulls as u64);
    w.u64(o.new_facts as u64);
    w.u64(o.total_facts as u64);
    w.u64(o.epoch);
}

fn get_outcome(r: &mut Reader<'_>) -> Result<ChaseOutcome, ProtoError> {
    Ok(ChaseOutcome {
        reason: get_reason(r)?,
        steps: r.u64()? as usize,
        fresh_nulls: r.u64()? as usize,
        new_facts: r.u64()? as usize,
        total_facts: r.u64()? as usize,
        epoch: r.u64()?,
    })
}

fn put_stats(w: &mut Writer, s: &SessionStats) {
    w.u64(s.epoch);
    w.u64(s.total_facts);
    w.u64(s.total_steps);
    w.u64(s.plan_recompiles);
    w.u64(s.merge_rewritten);
    w.u64(s.merge_collapsed);
    put_opt_reason(w, &s.last_reason);
    w.bool(s.quiescent);
}

fn get_stats(r: &mut Reader<'_>) -> Result<SessionStats, ProtoError> {
    Ok(SessionStats {
        epoch: r.u64()?,
        total_facts: r.u64()?,
        total_steps: r.u64()?,
        plan_recompiles: r.u64()?,
        merge_rewritten: r.u64()?,
        merge_collapsed: r.u64()?,
        last_reason: get_opt_reason(r)?,
        quiescent: r.bool()?,
    })
}

fn put_opts(w: &mut Writer, o: &QueryOpts) {
    w.bool(o.all);
    w.bool(o.sqo);
}

fn get_opts(r: &mut Reader<'_>) -> Result<QueryOpts, ProtoError> {
    Ok(QueryOpts {
        all: r.bool()?,
        sqo: r.bool()?,
    })
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A client-to-server message. Session-addressed variants carry the id the
/// conductor handed back from [`Request::Open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Create a session over a constraint set (surface syntax; `;` or
    /// newline separated). Answered by [`Response::Opened`] or an error if
    /// the sigma fails to parse or the global session cap is reached.
    Open {
        /// The constraint set, in surface syntax.
        sigma: String,
    },
    /// Apply an update batch of ground facts (surface syntax, e.g.
    /// `e(a,b). e(b,c).`) and continue the chase warm.
    Apply {
        /// The target session.
        session: u64,
        /// The batch, in fact surface syntax.
        facts: String,
    },
    /// Answer a conjunctive query, e.g. `q(X) <- e(X,Y), e(Y,Z)`.
    /// Concurrent-safe: served from the session's published snapshot, so
    /// it does not wait behind an in-flight apply.
    Query {
        /// The target session.
        session: u64,
        /// The query, in surface syntax.
        cq: String,
        /// Evaluation options (certain vs. all, SQO routing).
        opts: QueryOpts,
    },
    /// Take a server-side snapshot; answered with its id for `Restore`.
    Snapshot {
        /// The target session.
        session: u64,
    },
    /// Rewind the session to a snapshot taken earlier on it.
    Restore {
        /// The target session.
        session: u64,
        /// The snapshot id from [`Response::Snapshotted`].
        snapshot: u64,
    },
    /// Fetch the session's [`SessionStats`].
    Stats {
        /// The target session.
        session: u64,
    },
    /// Fetch the chased instance as text (the REPL's `show`).
    Dump {
        /// The target session.
        session: u64,
    },
    /// Close the session and release its slot under the global cap.
    Close {
        /// The target session.
        session: u64,
    },
    /// Fetch the server-wide metrics exposition (not session-addressed):
    /// conductor gauges, apply/query latency histograms and every open
    /// session's engine phase timings, as Prometheus-style text.
    Metrics,
    /// Force a durability point on a durable session: snapshot + WAL
    /// compaction (the REPL's `\persist`). Errors with
    /// [`ErrorCode::Durability`] on a server without a durable root.
    Persist {
        /// The target session.
        session: u64,
    },
}

impl Request {
    /// Encode into a frame payload (version byte + correlation id + tag +
    /// fields). The server echoes `corr` on the reply.
    pub fn encode(&self, corr: u64) -> Vec<u8> {
        let mut w;
        match self {
            Request::Open { sigma } => {
                w = Writer::new(1, corr);
                w.str(sigma);
            }
            Request::Apply { session, facts } => {
                w = Writer::new(2, corr);
                w.u64(*session);
                w.str(facts);
            }
            Request::Query { session, cq, opts } => {
                w = Writer::new(3, corr);
                w.u64(*session);
                w.str(cq);
                put_opts(&mut w, opts);
            }
            Request::Snapshot { session } => {
                w = Writer::new(4, corr);
                w.u64(*session);
            }
            Request::Restore { session, snapshot } => {
                w = Writer::new(5, corr);
                w.u64(*session);
                w.u64(*snapshot);
            }
            Request::Stats { session } => {
                w = Writer::new(6, corr);
                w.u64(*session);
            }
            Request::Dump { session } => {
                w = Writer::new(7, corr);
                w.u64(*session);
            }
            Request::Close { session } => {
                w = Writer::new(8, corr);
                w.u64(*session);
            }
            Request::Metrics => {
                w = Writer::new(9, corr);
            }
            Request::Persist { session } => {
                w = Writer::new(10, corr);
                w.u64(*session);
            }
        }
        w.0
    }

    /// Decode a frame payload into its correlation id and request. Total:
    /// malformed bytes yield a [`ProtoError`], never a panic.
    pub fn decode(payload: &[u8]) -> Result<(u64, Request), ProtoError> {
        let (corr, tag, mut r) = Reader::open(payload)?;
        let req = match tag {
            1 => Request::Open { sigma: r.str()? },
            2 => Request::Apply {
                session: r.u64()?,
                facts: r.str()?,
            },
            3 => Request::Query {
                session: r.u64()?,
                cq: r.str()?,
                opts: get_opts(&mut r)?,
            },
            4 => Request::Snapshot { session: r.u64()? },
            5 => Request::Restore {
                session: r.u64()?,
                snapshot: r.u64()?,
            },
            6 => Request::Stats { session: r.u64()? },
            7 => Request::Dump { session: r.u64()? },
            8 => Request::Close { session: r.u64()? },
            9 => Request::Metrics,
            10 => Request::Persist { session: r.u64()? },
            got => return Err(ProtoError::Tag { got }),
        };
        r.finish()?;
        Ok((corr, req))
    }

    /// Write this request as one frame carrying `corr`.
    pub fn write_to(&self, w: &mut impl Write, corr: u64) -> io::Result<()> {
        write_frame(w, &self.encode(corr))
    }

    /// Read one request frame; `Ok(None)` on clean end-of-stream.
    pub fn read_from(r: &mut impl Read) -> Result<Option<(u64, Request)>, ProtoError> {
        match read_frame(r)? {
            None => Ok(None),
            Some(payload) => Request::decode(&payload).map(Some),
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Coarse classification of a server-side failure, carried on the wire
/// alongside the human-readable message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// A sigma, fact batch or query failed to parse.
    Parse,
    /// The session hit a terminal stop earlier ([`ServeError::Poisoned`]).
    Poisoned,
    /// The global session cap is reached ([`ServeError::Capacity`]).
    Capacity,
    /// No such session id ([`ServeError::UnknownSession`]).
    UnknownSession,
    /// No such snapshot id ([`ServeError::UnknownSnapshot`]).
    UnknownSnapshot,
    /// The session's actor thread is gone ([`ServeError::SessionGone`]).
    SessionGone,
    /// Anything else (core rejection, internal failure).
    Internal,
    /// A durability operation failed ([`ServeError::Durability`]): the
    /// write-ahead log or a snapshot could not be read or written, or the
    /// session/server is not durable at all.
    Durability,
    /// The session idled past the server's TTL and, being non-durable, was
    /// discarded ([`ServeError::Evicted`]). Durable sessions never surface
    /// this — they warm-restart transparently on the next touch.
    Evicted,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Parse => 0,
            ErrorCode::Poisoned => 1,
            ErrorCode::Capacity => 2,
            ErrorCode::UnknownSession => 3,
            ErrorCode::UnknownSnapshot => 4,
            ErrorCode::SessionGone => 5,
            ErrorCode::Internal => 6,
            ErrorCode::Durability => 7,
            ErrorCode::Evicted => 8,
        }
    }

    fn from_u8(v: u8) -> Result<ErrorCode, ProtoError> {
        Ok(match v {
            0 => ErrorCode::Parse,
            1 => ErrorCode::Poisoned,
            2 => ErrorCode::Capacity,
            3 => ErrorCode::UnknownSession,
            4 => ErrorCode::UnknownSnapshot,
            5 => ErrorCode::SessionGone,
            6 => ErrorCode::Internal,
            7 => ErrorCode::Durability,
            8 => ErrorCode::Evicted,
            got => return Err(ProtoError::Tag { got }),
        })
    }
}

impl From<&ServeError> for ErrorCode {
    fn from(e: &ServeError) -> ErrorCode {
        match e {
            ServeError::Poisoned(_) => ErrorCode::Poisoned,
            ServeError::Core(_) => ErrorCode::Internal,
            ServeError::Capacity { .. } => ErrorCode::Capacity,
            ServeError::UnknownSession(_) => ErrorCode::UnknownSession,
            ServeError::UnknownSnapshot(_) => ErrorCode::UnknownSnapshot,
            ServeError::SessionGone => ErrorCode::SessionGone,
            ServeError::Durability(_) => ErrorCode::Durability,
            ServeError::Evicted(_) => ErrorCode::Evicted,
        }
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The session was created; address it with this id.
    Opened {
        /// The new session's id.
        session: u64,
    },
    /// The batch was applied; what the warm re-chase did.
    Applied {
        /// The apply's [`ChaseOutcome`], field-for-field.
        outcome: ChaseOutcome,
    },
    /// The query's answer tuples, each term in surface syntax.
    Answers {
        /// One `Vec<String>` per answer tuple.
        tuples: Vec<Vec<String>>,
    },
    /// A snapshot was taken server-side.
    Snapshotted {
        /// Its id, for [`Request::Restore`].
        snapshot: u64,
    },
    /// The session was rewound to the addressed snapshot.
    Restored,
    /// The session's counters, *verbatim* [`SessionStats`].
    Stats {
        /// The stats struct the session API returns.
        stats: SessionStats,
    },
    /// The chased instance as text.
    Dump {
        /// Facts in surface syntax, one per line.
        text: String,
    },
    /// The session was closed and its slot released.
    Closed,
    /// The server-wide metrics exposition.
    Metrics {
        /// Prometheus-style `name{label} value` lines, one per metric.
        text: String,
    },
    /// A durability point was taken ([`Request::Persist`]).
    Persisted {
        /// The epoch the on-disk state now covers.
        epoch: u64,
    },
    /// The request failed; the session (if any) is otherwise unharmed
    /// unless the code says poisoned.
    Error {
        /// Coarse machine-readable classification.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Build the error response for a [`ServeError`].
    pub fn from_serve_error(e: &ServeError) -> Response {
        Response::Error {
            code: ErrorCode::from(e),
            message: e.to_string(),
        }
    }

    /// Encode into a frame payload (version byte + correlation id + tag +
    /// fields). `corr` echoes the request this answers.
    pub fn encode(&self, corr: u64) -> Vec<u8> {
        let mut w;
        match self {
            Response::Opened { session } => {
                w = Writer::new(1, corr);
                w.u64(*session);
            }
            Response::Applied { outcome } => {
                w = Writer::new(2, corr);
                put_outcome(&mut w, outcome);
            }
            Response::Answers { tuples } => {
                w = Writer::new(3, corr);
                w.u32(tuples.len() as u32);
                for t in tuples {
                    w.u32(t.len() as u32);
                    for term in t {
                        w.str(term);
                    }
                }
            }
            Response::Snapshotted { snapshot } => {
                w = Writer::new(4, corr);
                w.u64(*snapshot);
            }
            Response::Restored => {
                w = Writer::new(5, corr);
            }
            Response::Stats { stats } => {
                w = Writer::new(6, corr);
                put_stats(&mut w, stats);
            }
            Response::Dump { text } => {
                w = Writer::new(7, corr);
                w.str(text);
            }
            Response::Closed => {
                w = Writer::new(8, corr);
            }
            Response::Error { code, message } => {
                w = Writer::new(9, corr);
                w.u8(code.to_u8());
                w.str(message);
            }
            Response::Metrics { text } => {
                w = Writer::new(10, corr);
                w.str(text);
            }
            Response::Persisted { epoch } => {
                w = Writer::new(11, corr);
                w.u64(*epoch);
            }
        }
        w.0
    }

    /// Decode a frame payload into its correlation id and response. Total:
    /// malformed bytes yield a [`ProtoError`], never a panic.
    pub fn decode(payload: &[u8]) -> Result<(u64, Response), ProtoError> {
        let (corr, tag, mut r) = Reader::open(payload)?;
        let resp = match tag {
            1 => Response::Opened { session: r.u64()? },
            2 => Response::Applied {
                outcome: get_outcome(&mut r)?,
            },
            3 => {
                let n = r.u32()? as usize;
                let mut tuples = Vec::new();
                for _ in 0..n {
                    let k = r.u32()? as usize;
                    let mut t = Vec::new();
                    for _ in 0..k {
                        t.push(r.str()?);
                    }
                    tuples.push(t);
                }
                Response::Answers { tuples }
            }
            4 => Response::Snapshotted { snapshot: r.u64()? },
            5 => Response::Restored,
            6 => Response::Stats {
                stats: get_stats(&mut r)?,
            },
            7 => Response::Dump { text: r.str()? },
            8 => Response::Closed,
            9 => Response::Error {
                code: ErrorCode::from_u8(r.u8()?)?,
                message: r.str()?,
            },
            10 => Response::Metrics { text: r.str()? },
            11 => Response::Persisted { epoch: r.u64()? },
            got => return Err(ProtoError::Tag { got }),
        };
        r.finish()?;
        Ok((corr, resp))
    }

    /// Write this response as one frame echoing `corr`.
    pub fn write_to(&self, w: &mut impl Write, corr: u64) -> io::Result<()> {
        write_frame(w, &self.encode(corr))
    }

    /// Read one response frame; `Ok(None)` on clean end-of-stream.
    pub fn read_from(r: &mut impl Read) -> Result<Option<(u64, Response)>, ProtoError> {
        match read_frame(r)? {
            None => Ok(None),
            Some(payload) => Response::decode(&payload).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let corr = 0xDEAD_BEEF_CAFE_F00D ^ req.encode(0).len() as u64;
        let mut buf = Vec::new();
        req.write_to(&mut buf, corr).unwrap();
        let mut cursor = io::Cursor::new(buf);
        let (back_corr, back) = Request::read_from(&mut cursor).unwrap().unwrap();
        assert_eq!(back_corr, corr);
        assert_eq!(back, req);
        assert!(Request::read_from(&mut cursor).unwrap().is_none());
    }

    fn roundtrip_resp(resp: Response) {
        let corr = u64::MAX - resp.encode(0).len() as u64;
        let mut buf = Vec::new();
        resp.write_to(&mut buf, corr).unwrap();
        let mut cursor = io::Cursor::new(buf);
        let (back_corr, back) = Response::read_from(&mut cursor).unwrap().unwrap();
        assert_eq!(back_corr, corr);
        assert_eq!(back, resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Open {
            sigma: "e(X,Y) -> e(Y,X); e(X,Y), e(Y,Z) -> e(X,Z)".into(),
        });
        roundtrip_req(Request::Apply {
            session: 7,
            facts: "e(a,b). e(b,c).".into(),
        });
        roundtrip_req(Request::Query {
            session: 7,
            cq: "q(X) <- e(X,Y)".into(),
            opts: QueryOpts::all_tuples().without_sqo(),
        });
        roundtrip_req(Request::Snapshot { session: 1 });
        roundtrip_req(Request::Restore {
            session: 1,
            snapshot: 3,
        });
        roundtrip_req(Request::Stats { session: u64::MAX });
        roundtrip_req(Request::Dump { session: 0 });
        roundtrip_req(Request::Close { session: 2 });
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::Persist { session: 11 });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Opened { session: 9 });
        roundtrip_resp(Response::Applied {
            outcome: ChaseOutcome {
                reason: StopReason::StepLimit(10_000),
                steps: 10_000,
                fresh_nulls: 3,
                new_facts: 42,
                total_facts: 99,
                epoch: 5,
            },
        });
        roundtrip_resp(Response::Answers {
            tuples: vec![vec!["a".into(), "b".into()], vec!["n_1".into()]],
        });
        roundtrip_resp(Response::Answers { tuples: vec![] });
        roundtrip_resp(Response::Snapshotted { snapshot: 4 });
        roundtrip_resp(Response::Restored);
        roundtrip_resp(Response::Stats {
            stats: SessionStats {
                epoch: 3,
                total_facts: 20,
                total_steps: 17,
                plan_recompiles: 2,
                merge_rewritten: 1,
                merge_collapsed: 0,
                last_reason: Some(StopReason::MonitorAbort { depth: 2 }),
                quiescent: false,
            },
        });
        roundtrip_resp(Response::Dump {
            text: "e(a,b).\ne(b,a).\n".into(),
        });
        roundtrip_resp(Response::Closed);
        roundtrip_resp(Response::Metrics {
            text: "chase_sessions_open 2\nchase_apply_ns_p50_ns 1500\n".into(),
        });
        roundtrip_resp(Response::Error {
            code: ErrorCode::Capacity,
            message: "session cap reached (8 sessions)".into(),
        });
        roundtrip_resp(Response::Persisted { epoch: 17 });
        roundtrip_resp(Response::Error {
            code: ErrorCode::Durability,
            message: "durability: server has no durable root".into(),
        });
    }

    #[test]
    fn truncated_and_oversized_frames_are_rejected() {
        // EOF before any byte: clean end-of-stream.
        let mut empty = io::Cursor::new(Vec::<u8>::new());
        assert_eq!(read_frame(&mut empty).unwrap(), None);

        // EOF inside the length prefix.
        let mut partial = io::Cursor::new(vec![5u8, 0]);
        assert_eq!(read_frame(&mut partial).unwrap_err(), ProtoError::Truncated);

        // EOF inside the payload.
        let mut short = io::Cursor::new(vec![5, 0, 0, 0, 1, 2]);
        assert_eq!(read_frame(&mut short).unwrap_err(), ProtoError::Truncated);

        // Declared length over the cap: rejected before allocation.
        let mut huge = io::Cursor::new((MAX_FRAME + 1).to_le_bytes().to_vec());
        assert_eq!(
            read_frame(&mut huge).unwrap_err(),
            ProtoError::Oversized { len: MAX_FRAME + 1 }
        );
    }

    #[test]
    fn malformed_payloads_error_without_panicking() {
        assert_eq!(Request::decode(&[]).unwrap_err(), ProtoError::Short);
        // Version byte alone: the correlation id is missing.
        assert_eq!(
            Request::decode(&[PROTO_VERSION]).unwrap_err(),
            ProtoError::Short
        );
        assert_eq!(
            Request::decode(&[99, 1]).unwrap_err(),
            ProtoError::Version { got: 99 }
        );
        // Correlation id present but the tag is unknown.
        let mut bad_tag = vec![PROTO_VERSION];
        bad_tag.extend_from_slice(&7u64.to_le_bytes());
        bad_tag.push(200);
        assert_eq!(
            Request::decode(&bad_tag).unwrap_err(),
            ProtoError::Tag { got: 200 }
        );
        // Correlation id truncated mid-field.
        let mut short_corr = vec![PROTO_VERSION];
        short_corr.extend_from_slice(&[1, 2, 3]);
        assert_eq!(Request::decode(&short_corr).unwrap_err(), ProtoError::Short);
        // String length field claims more bytes than the payload holds.
        let mut w = Writer::new(1, 42);
        w.u32(1000);
        assert_eq!(Request::decode(&w.0).unwrap_err(), ProtoError::Short);
        // Bad UTF-8 in a string field.
        let mut w = Writer::new(1, 42);
        w.u32(2);
        w.0.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(Request::decode(&w.0).unwrap_err(), ProtoError::Utf8);
        // Trailing garbage after a complete message.
        let mut bytes = Request::Close { session: 1 }.encode(3);
        bytes.push(0);
        assert_eq!(
            Request::decode(&bytes).unwrap_err(),
            ProtoError::Trailing { extra: 1 }
        );
        // Responses too.
        let mut zero_tag = vec![PROTO_VERSION];
        zero_tag.extend_from_slice(&0u64.to_le_bytes());
        zero_tag.push(0);
        assert_eq!(
            Response::decode(&zero_tag).unwrap_err(),
            ProtoError::Tag { got: 0 }
        );
        let mut w = Writer::new(9, 0);
        w.u8(250);
        assert_eq!(
            Response::decode(&w.0).unwrap_err(),
            ProtoError::Tag { got: 250 }
        );
    }

    #[test]
    fn v1_frames_are_rejected_with_a_version_error() {
        // A hand-built version-1 frame (no correlation id): the old layout
        // was [version=1][tag][fields]. The decoder must answer with a
        // clean Version error rather than misparse the tag as corr bytes.
        let v1_payload = [1u8, 9, 0]; // v1 Metrics-shaped bytes
        assert_eq!(
            Request::decode(&v1_payload).unwrap_err(),
            ProtoError::Version { got: 1 }
        );
        assert_eq!(
            Response::decode(&v1_payload).unwrap_err(),
            ProtoError::Version { got: 1 }
        );
    }
}
