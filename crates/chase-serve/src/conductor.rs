//! The multi-tenant session runtime: sessions as mailbox-driven state
//! machines scheduled over a **bounded worker pool**, fronted by a
//! [`Conductor`] that creates, routes, admits and evicts sessions.
//!
//! ## Pool scheduling
//!
//! Every open session owns a [`ChaseSession`] — warm trigger pool, plan
//! cache, rewriting cache and all — plus a typed mailbox (`SessionMsg`:
//! `Apply`/`Query`/`Snapshot`/`Restore`/`Stats`/`Persist`). With
//! [`ConductorConfig::workers`] > 0 (the default: `min(cores, 8)`) no
//! session owns a thread: posting into an idle session's mailbox links the
//! session onto a conductor-level **run queue**, and a pool worker pulls
//! it, drains its mailbox up to [`ConductorConfig::dispatch_budget`]
//! messages, then requeues it if more arrived. A `scheduled` flag per
//! mailbox guarantees a session is owned by at most one worker at a time,
//! so all mutation stays serialized by construction — thousands of
//! mostly-idle tenants cost queue entries, not parked OS threads.
//!
//! `workers: 0` is the **legacy escape hatch** (kept for one release): one
//! dedicated actor thread per session, exactly the PR-7 runtime.
//!
//! ## Concurrent reads during an in-flight apply
//!
//! After every mutating message the dispatcher *publishes* an
//! `Arc<`[`Instance`]`>` snapshot of the chased instance — but only when
//! [`Instance::version`] actually moved, so duplicate-only batches never
//! pay the copy (**copy-on-read**: readers share the published `Arc`,
//! writers replace it). [`SessionHandle::query`] evaluates on the *calling*
//! thread against that published snapshot whenever it is quiescent, so a
//! certain-answer read admitted while a large apply is chasing inside a
//! worker returns immediately with exactly the pre-batch state — it never
//! queues behind the write. Publication happens *before* the apply's reply
//! is released, so a client that saw its apply acknowledged is guaranteed
//! to read its own writes. These invariants are identical in pool and
//! legacy modes; `process` is the single shared dispatcher.
//!
//! ## Eviction
//!
//! With [`ConductorConfig::evict_after`] set (pool mode only), a janitor
//! thread tears down sessions idle past the TTL, oldest-touch first in
//! effect: **durable** sessions [`ChaseSession::persist`] *before*
//! teardown and transparently warm-restart from their `durable_root`
//! directory at the next [`Conductor::route`]; **non-durable** sessions
//! lose their state and later touches fail with [`ServeError::Evicted`].
//! A session mid-dispatch or with queued messages is never evicted.
//!
//! ## Panic containment
//!
//! A panic while processing one session's message is caught by the
//! worker: the session is marked poisoned (reads fail with
//! [`ServeError::Poisoned`]), its mailbox is killed (later posts fail with
//! [`ServeError::SessionGone`]) and it is never requeued — the worker and
//! every other session keep serving.
//!
//! ## Admission
//!
//! The conductor enforces a **global session cap** (admission fails with
//! [`ServeError::Capacity`]) and clamps every admitted session's chase
//! budget to the configured **per-session step budget**, so one runaway
//! tenant can neither starve the machine nor chase unboundedly.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use chase_core::{Atom, ConjunctiveQuery, ConstraintSet, Instance, Term};
use chase_engine::{ChaseMode, StopReason};
use chase_obs::{
    Counter, EventKind, Gauge, Histogram, MetricsRegistry, Recorder, RegistrySnapshot,
};

use crate::session::{
    choose_rewriting, ChaseOutcome, ChaseSession, QueryOpts, ServeError, SessionConfig,
    SessionSnapshot, SessionStats,
};
use crate::wal::{self, DurabilityConfig};

/// Admission and scheduling policy for a [`Conductor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConductorConfig {
    /// Global cap on concurrently open sessions.
    pub max_sessions: usize,
    /// Per-session chase step budget. Every admitted session's
    /// `chase.max_steps` is clamped to at most this, whatever the session
    /// template asks for.
    pub step_budget: Option<usize>,
    /// Session template: configuration every admitted session starts from.
    pub session: SessionConfig,
    /// Make sessions durable under this root: each admitted session logs
    /// to `<root>/session-<id>` and [`Conductor::new`] **warm-restarts**
    /// every session directory it finds there (same ids, snapshot loaded,
    /// WAL-since-snapshot replayed). `None` (the default) keeps every
    /// session in memory.
    pub durable_root: Option<PathBuf>,
    /// Fsync policy and snapshot-compaction thresholds for durable
    /// sessions (ignored without [`ConductorConfig::durable_root`]).
    pub durability: DurabilityConfig,
    /// Pool workers sharing all session mailboxes. The default is
    /// `min(available cores, 8)`. **`0` selects the legacy
    /// thread-per-session runtime** (one parked OS thread per open
    /// session) — an escape hatch kept for one release.
    pub workers: usize,
    /// Messages a worker drains from one session's mailbox per dispatch
    /// before requeueing it — the fairness knob: lower bounds per-tenant
    /// latency under contention, higher amortizes scheduling.
    pub dispatch_budget: usize,
    /// Evict sessions idle (no message or route) for at least this long.
    /// Durable sessions persist first and warm-restart transparently on
    /// the next touch; non-durable sessions are discarded and answer
    /// [`ServeError::Evicted`] thereafter. `None` (default) never evicts.
    /// Requires the pool (`workers > 0`); ignored in legacy mode.
    pub evict_after: Option<Duration>,
}

impl Default for ConductorConfig {
    fn default() -> ConductorConfig {
        ConductorConfig {
            max_sessions: 64,
            step_budget: Some(100_000),
            session: SessionConfig::default(),
            durable_root: None,
            durability: DurabilityConfig::default(),
            workers: default_workers(),
            dispatch_budget: 32,
            evict_after: None,
        }
    }
}

/// The default worker-pool width: every core up to 8.
fn default_workers() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Series names in the conductor-wide registry (see [`Conductor::metrics`]).
const M_SESSIONS_OPEN: &str = "chase_sessions_open";
const M_SESSIONS_PEAK: &str = "chase_sessions_peak";
const M_SESSIONS_OPENED: &str = "chase_sessions_opened_total";
const M_SESSIONS_REJECTED: &str = "chase_sessions_rejected_total";
const M_APPLY_NS: &str = "chase_apply_ns";
const M_QUERY_NS: &str = "chase_query_ns";
const M_MAILBOX_DEPTH: &str = "chase_mailbox_depth";
const M_PUBLISH: &str = "chase_snapshot_publish_total";
const M_PUBLISH_SKIPPED: &str = "chase_snapshot_publish_skipped_total";
const M_PHASE_NS: &str = "chase_phase_ns";
const M_EVENTS_DROPPED: &str = "chase_events_dropped_total";
const M_SESSIONS_REOPENED: &str = "chase_sessions_reopened_total";
const M_REOPEN_FAILED: &str = "chase_sessions_reopen_failed_total";
const M_POOL_WORKERS: &str = "chase_pool_workers";
const M_POOL_QUEUE_DEPTH: &str = "chase_pool_queue_depth";
const M_POOL_DISPATCHES: &str = "chase_pool_dispatches_total";
const M_POOL_MESSAGES: &str = "chase_pool_messages_total";
const M_POOL_PANICS: &str = "chase_pool_panics_total";
const M_EVICTIONS: &str = "chase_evictions_total";
const M_EVICTIONS_RESTORED: &str = "chase_evictions_restored_total";

/// Handles into the conductor-wide [`MetricsRegistry`] plus the session's
/// engine recorder, shared by the session's dispatcher and every
/// [`SessionHandle`] clone. All fields are cheap-to-clone views onto
/// conductor-owned series — per-session work lands in the server-wide
/// aggregate without extra locking.
#[derive(Clone)]
struct HandleMetrics {
    /// Blocking-apply round-trip latency (send → chased → acked).
    apply_ns: Arc<Histogram>,
    /// Query latency, fast path and mailbox path alike.
    query_ns: Arc<Histogram>,
    /// Messages currently queued across every session mailbox.
    mailbox_depth: Gauge,
    /// Snapshot publications that actually replaced the published state.
    publishes: Counter,
    /// Publications filtered out by the version compare (the other half of
    /// the republish ratio).
    publish_skipped: Counter,
    /// The session's engine recorder (phase histograms + event ring),
    /// readable without touching the dispatcher.
    recorder: Recorder,
}

/// The session's read surface, shared between its dispatcher (publisher)
/// and every handle (readers).
struct ReadState {
    /// Conductor-wide metric handles this session reports into.
    metrics: HandleMetrics,
    /// The latest published snapshot.
    published: RwLock<Published>,
    /// Rewriting decisions for the concurrent read path, keyed by query
    /// text — the handle-side mirror of the session's own cache, computed
    /// by the same [`choose_rewriting`].
    rewrites: Mutex<HashMap<String, Option<ConjunctiveQuery>>>,
    /// The session's constraint set (for rewriting on the read path).
    set: ConstraintSet,
    /// The session's configuration (for rewriting policy).
    cfg: SessionConfig,
}

/// One published state: an immutable chased instance plus the flags a
/// reader needs to decide whether it may answer from it.
#[derive(Clone)]
struct Published {
    /// The chased instance readers evaluate against.
    instance: Arc<Instance>,
    /// [`Instance::version`] at publication — the republish filter.
    version: u64,
    /// Was the session quiescent (fully chased, unpoisoned) when this was
    /// published? Only quiescent snapshots may answer queries locally.
    quiescent: bool,
    /// Terminal stop, if the session is poisoned.
    poisoned: Option<StopReason>,
}

/// The typed mailbox protocol a dispatcher drains. One variant per
/// operation; every variant that answers carries its own reply sender.
enum SessionMsg {
    /// Apply an update batch and continue the chase warm.
    Apply {
        batch: Vec<Atom>,
        reply: Sender<Result<ChaseOutcome, ServeError>>,
    },
    /// Answer a query on the dispatcher (the quiesce-first slow path;
    /// quiescent reads bypass the mailbox entirely).
    Query {
        q: ConjunctiveQuery,
        opts: QueryOpts,
        reply: Sender<Result<Vec<Vec<Term>>, ServeError>>,
    },
    /// Take a snapshot into the session-side store; replies with its id.
    Snapshot { reply: Sender<u64> },
    /// Rewind to a stored snapshot.
    Restore {
        snapshot: u64,
        reply: Sender<Result<(), ServeError>>,
    },
    /// Read the session's counters.
    Stats { reply: Sender<SessionStats> },
    /// Force a durability point (snapshot + WAL compaction); replies with
    /// the epoch the on-disk state now covers.
    Persist {
        reply: Sender<Result<u64, ServeError>>,
    },
    /// Panic inside the dispatcher — the fault-injection hook behind
    /// [`SessionHandle::inject_panic`]. Never sent in production.
    InjectPanic,
    /// Drop the session: the legacy actor breaks its loop and the thread
    /// exits. Unused in pool mode (teardown kills the mailbox directly).
    Close,
}

/// What the session owns besides its read surface: the engine state and
/// the server-side snapshot store, guarded by one lock whose single
/// holder is whichever worker (or legacy actor) is dispatching it.
struct SessionCore {
    session: ChaseSession,
    snapshots: HashMap<u64, SessionSnapshot>,
    next_snapshot: u64,
}

/// Mailbox state: the queue plus the scheduling flags that make the run
/// queue race-free. `scheduled` is true exactly while the session is on
/// the run queue or inside a worker's dispatch — the single-drainer
/// invariant. `dead` kills the mailbox (close, eviction, panic): posts
/// fail, queued messages are dropped.
#[derive(Default)]
struct MailboxState {
    queue: VecDeque<SessionMsg>,
    scheduled: bool,
    dead: bool,
}

/// One pooled session: core + mailbox + read surface + idle clock.
struct SessionCell {
    core: Mutex<SessionCore>,
    mailbox: Mutex<MailboxState>,
    read: Arc<ReadState>,
    /// Was this session durable at spawn (decides the eviction path).
    durable: bool,
    /// Milliseconds since the pool epoch at the last touch (post or
    /// route) — the eviction clock.
    last_touch: AtomicU64,
}

/// State shared by every pool worker, the janitor, and all handles.
struct PoolShared {
    run_queue: Mutex<VecDeque<Arc<SessionCell>>>,
    available: Condvar,
    stop: AtomicBool,
    dispatch_budget: usize,
    /// Zero point of every cell's `last_touch` clock.
    epoch: Instant,
    queue_depth: Gauge,
    dispatches: Counter,
    messages: Counter,
    panics: Counter,
}

impl PoolShared {
    /// Current millis on the touch clock.
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Link a session onto the run queue and wake one worker.
    fn enqueue(&self, cell: Arc<SessionCell>) {
        self.run_queue.lock().unwrap().push_back(cell);
        self.queue_depth.add(1);
        self.available.notify_one();
    }
}

/// How a session may address its messages: a dedicated actor thread
/// (legacy) or a pooled cell on the conductor's run queue.
#[derive(Clone)]
enum Backend {
    Thread(Sender<SessionMsg>),
    Pool {
        cell: Arc<SessionCell>,
        shared: Arc<PoolShared>,
    },
}

/// A clonable address of one session: its mailbox backend plus the
/// published read surface. All methods are `&self`; clones address the
/// same session.
#[derive(Clone)]
pub struct SessionHandle {
    backend: Backend,
    read: Arc<ReadState>,
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle").finish_non_exhaustive()
    }
}

impl SessionHandle {
    /// Send into the mailbox, keeping the conductor-wide depth gauge in
    /// step. Pool mode additionally links the session onto the run queue
    /// when it was idle. `Err` means the session is gone (closed, evicted
    /// or panicked) and nothing was queued.
    fn post(&self, msg: SessionMsg) -> Result<(), ()> {
        match &self.backend {
            Backend::Thread(tx) => {
                self.read.metrics.mailbox_depth.add(1);
                if tx.send(msg).is_err() {
                    self.read.metrics.mailbox_depth.add(-1);
                    return Err(());
                }
                Ok(())
            }
            Backend::Pool { cell, shared } => {
                let wake = {
                    let mut mb = cell.mailbox.lock().unwrap();
                    if mb.dead {
                        return Err(());
                    }
                    mb.queue.push_back(msg);
                    self.read.metrics.mailbox_depth.add(1);
                    if mb.scheduled {
                        false
                    } else {
                        mb.scheduled = true;
                        true
                    }
                };
                cell.last_touch.store(shared.now_ms(), Ordering::Relaxed);
                if wake {
                    shared.enqueue(Arc::clone(cell));
                }
                Ok(())
            }
        }
    }

    /// Reset the session's idle clock (routing counts as a touch).
    fn touch(&self) {
        if let Backend::Pool { cell, shared } = &self.backend {
            cell.last_touch.store(shared.now_ms(), Ordering::Relaxed);
        }
    }

    /// Apply an update batch, blocking until the warm re-chase finishes.
    pub fn apply(&self, batch: Vec<Atom>) -> Result<ChaseOutcome, ServeError> {
        let t0 = Instant::now();
        let out = self
            .apply_async(batch)
            .recv()
            .map_err(|_| ServeError::SessionGone)?;
        self.read.metrics.apply_ns.record_duration(t0.elapsed());
        out
    }

    /// Queue an update batch and return immediately; the receiver yields
    /// the outcome when the dispatcher finishes chasing it. Queries issued
    /// in the meantime are answered from the pre-batch snapshot.
    pub fn apply_async(&self, batch: Vec<Atom>) -> Receiver<Result<ChaseOutcome, ServeError>> {
        let (reply, rx) = mpsc::channel();
        if self
            .post(SessionMsg::Apply {
                batch,
                reply: reply.clone(),
            })
            .is_err()
        {
            // Session gone: make the receiver yield the error instead of
            // hanging up empty.
            let _ = reply.send(Err(ServeError::SessionGone));
        }
        rx
    }

    /// Answer a conjunctive query. When the published snapshot is
    /// quiescent this evaluates **on the calling thread** against that
    /// snapshot — concurrent with any in-flight apply, which it does not
    /// wait for. Otherwise (mid-budget stop pending, or nothing published
    /// yet after a restore) it falls back to the mailbox, which quiesces
    /// first, exactly like [`ChaseSession::query`].
    pub fn query(
        &self,
        q: &ConjunctiveQuery,
        opts: QueryOpts,
    ) -> Result<Vec<Vec<Term>>, ServeError> {
        let t0 = Instant::now();
        let out = self.query_inner(q, opts);
        self.read.metrics.query_ns.record_duration(t0.elapsed());
        out
    }

    /// [`SessionHandle::query`] minus the latency accounting, so both the
    /// fast path and the mailbox fallback land in one histogram.
    fn query_inner(
        &self,
        q: &ConjunctiveQuery,
        opts: QueryOpts,
    ) -> Result<Vec<Vec<Term>>, ServeError> {
        let published = self.read.published.read().unwrap().clone();
        if let Some(r) = published.poisoned {
            return Err(ServeError::Poisoned(r));
        }
        if published.quiescent {
            let target = if opts.sqo { self.rewritten(q) } else { None };
            let target = target.as_ref().unwrap_or(q);
            return Ok(if opts.all {
                target.evaluate(&published.instance)
            } else {
                target.evaluate_certain(&published.instance)
            });
        }
        let (reply, rx) = mpsc::channel();
        self.post(SessionMsg::Query {
            q: q.clone(),
            opts,
            reply,
        })
        .map_err(|_| ServeError::SessionGone)?;
        rx.recv().map_err(|_| ServeError::SessionGone)?
    }

    /// The read path's cached rewriting decision for `q` (mirrors the
    /// session-side cache; both call [`choose_rewriting`]).
    fn rewritten(&self, q: &ConjunctiveQuery) -> Option<ConjunctiveQuery> {
        if !self.read.cfg.use_sqo {
            return None;
        }
        let key = q.to_string();
        let mut cache = self.read.rewrites.lock().unwrap();
        if let Some(cached) = cache.get(&key) {
            return cached.clone();
        }
        let choice = choose_rewriting(q, &self.read.set, &self.read.cfg);
        cache.insert(key, choice.clone());
        choice
    }

    /// Take a server-side snapshot; returns its id for [`SessionHandle::restore`].
    pub fn snapshot(&self) -> Result<u64, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.post(SessionMsg::Snapshot { reply })
            .map_err(|_| ServeError::SessionGone)?;
        rx.recv().map_err(|_| ServeError::SessionGone)
    }

    /// Rewind the session to a snapshot taken earlier on it.
    pub fn restore(&self, snapshot: u64) -> Result<(), ServeError> {
        let (reply, rx) = mpsc::channel();
        self.post(SessionMsg::Restore { snapshot, reply })
            .map_err(|_| ServeError::SessionGone)?;
        rx.recv().map_err(|_| ServeError::SessionGone)?
    }

    /// The published instance rendered as fact text (the protocol's
    /// `Dump`). Served from the read snapshot like [`SessionHandle::query`],
    /// so it never waits behind an in-flight apply.
    pub fn dump(&self) -> Result<String, ServeError> {
        let published = self.read.published.read().unwrap().clone();
        if let Some(r) = published.poisoned {
            return Err(ServeError::Poisoned(r));
        }
        Ok(published.instance.to_string())
    }

    /// One coherent reading of the session's counters.
    pub fn stats(&self) -> Result<SessionStats, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.post(SessionMsg::Stats { reply })
            .map_err(|_| ServeError::SessionGone)?;
        rx.recv().map_err(|_| ServeError::SessionGone)
    }

    /// Force a durability point now ([`ChaseSession::persist`]): snapshot
    /// the session's state and compact its write-ahead log. Returns the
    /// epoch the on-disk state covers; [`ServeError::Durability`] on an
    /// in-memory session.
    pub fn persist(&self) -> Result<u64, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.post(SessionMsg::Persist { reply })
            .map_err(|_| ServeError::SessionGone)?;
        rx.recv().map_err(|_| ServeError::SessionGone)?
    }

    /// Fault-injection hook: make the session's next dispatch panic, so
    /// tests can pin the worker's panic containment. Hidden, test-only.
    #[doc(hidden)]
    pub fn inject_panic(&self) {
        let _ = self.post(SessionMsg::InjectPanic);
    }
}

/// One live session as the conductor tracks it. Pooled sessions have no
/// thread of their own.
struct Slot {
    handle: SessionHandle,
    thread: Option<thread::JoinHandle<()>>,
}

/// Why a session id no longer resolves even though it once did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EvictedKind {
    /// Persisted to its durable dir; the next route warm-restarts it.
    Durable,
    /// In-memory state discarded; the id answers [`ServeError::Evicted`].
    Transient,
}

/// Creates, routes, admits and evicts sessions: the server's front object.
///
/// `open` admits a session (subject to the global cap and the per-session
/// step budget), `route` resolves a session id to a [`SessionHandle`] —
/// transparently warm-restarting a TTL-evicted durable session — and
/// `close` tears a session down and frees its slot. All methods take
/// `&self`; the conductor is shared behind an `Arc` across connection
/// threads.
pub struct Conductor {
    cfg: ConductorConfig,
    sessions: Arc<Mutex<HashMap<u64, Slot>>>,
    /// Sessions torn down by the TTL janitor, by kind — consulted by
    /// `route` to decide between warm-restart and [`ServeError::Evicted`].
    evicted: Arc<Mutex<HashMap<u64, EvictedKind>>>,
    next_id: AtomicU64,
    /// The server-wide aggregate registry: session lifecycle gauges and
    /// counters, apply/query latency histograms, publish counters, pool
    /// and eviction series. Every session reports into these shared
    /// series via [`HandleMetrics`].
    metrics: MetricsRegistry,
    /// Pool scheduling state; `None` in legacy thread-per-session mode.
    pool: Option<Arc<PoolShared>>,
    /// Worker + janitor threads, joined at shutdown.
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
}

/// Conductor-wide session lifecycle counters, served without touching any
/// session mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetStats {
    /// Sessions open right now.
    pub open: usize,
    /// High-water mark of concurrently open sessions.
    pub peak: u64,
    /// Sessions ever admitted.
    pub opened_total: u64,
    /// Admissions refused by the capacity cap.
    pub rejected_total: u64,
}

impl Conductor {
    /// A conductor with the given admission and scheduling policy.
    ///
    /// With [`ConductorConfig::workers`] > 0 this spawns the worker pool
    /// (and, with [`ConductorConfig::evict_after`], the eviction janitor).
    ///
    /// With [`ConductorConfig::durable_root`] set, construction is a **warm
    /// restart**: every `session-<id>` directory under the root is reopened
    /// through [`ChaseSession::open_with`] — newest snapshot loaded, the
    /// write-ahead log since it replayed — and served again under its old
    /// id; id allocation continues past the highest reopened id. A
    /// directory that fails to reopen is left untouched on disk and
    /// counted in `chase_sessions_reopen_failed_total` rather than taking
    /// the whole server down.
    pub fn new(cfg: ConductorConfig) -> Conductor {
        let metrics = MetricsRegistry::new();
        let pool = (cfg.workers > 0).then(|| {
            Arc::new(PoolShared {
                run_queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                stop: AtomicBool::new(false),
                dispatch_budget: cfg.dispatch_budget.max(1),
                epoch: Instant::now(),
                queue_depth: metrics.gauge(M_POOL_QUEUE_DEPTH),
                dispatches: metrics.counter(M_POOL_DISPATCHES),
                messages: metrics.counter(M_POOL_MESSAGES),
                panics: metrics.counter(M_POOL_PANICS),
            })
        });
        let mut threads = Vec::new();
        if let Some(shared) = &pool {
            metrics.gauge(M_POOL_WORKERS).set(cfg.workers as i64);
            for _ in 0..cfg.workers {
                let shared = Arc::clone(shared);
                threads.push(thread::spawn(move || pool_worker(shared)));
            }
        }
        let conductor = Conductor {
            cfg,
            sessions: Arc::new(Mutex::new(HashMap::new())),
            evicted: Arc::new(Mutex::new(HashMap::new())),
            next_id: AtomicU64::new(1),
            metrics,
            pool,
            threads: Mutex::new(threads),
        };
        conductor.reopen_durable_sessions();
        conductor.spawn_janitor();
        conductor
    }

    /// Scan the durable root and bring every reopenable session back up.
    fn reopen_durable_sessions(&self) {
        let Some(root) = &self.cfg.durable_root else {
            return;
        };
        let Ok(entries) = std::fs::read_dir(root) else {
            return; // nothing persisted yet; `open` creates the root lazily
        };
        let mut found: Vec<(u64, PathBuf)> = entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let id: u64 = name.strip_prefix("session-")?.parse().ok()?;
                let path = e.path();
                wal::is_session_dir(&path).then_some((id, path))
            })
            .collect();
        found.sort();
        let mut max_id = 0;
        let mut sessions = self.sessions.lock().unwrap();
        for (id, dir) in found {
            max_id = max_id.max(id);
            if sessions.len() >= self.cfg.max_sessions {
                self.metrics.counter(M_REOPEN_FAILED).inc();
                continue;
            }
            match ChaseSession::open_with(&dir, self.cfg.durability) {
                Ok(session) => {
                    let sigma = session.constraints().clone();
                    let cfg = session.config().clone();
                    sessions.insert(id, self.spawn_slot(session, sigma, cfg));
                    self.metrics.counter(M_SESSIONS_OPENED).inc();
                    self.metrics.counter(M_SESSIONS_REOPENED).inc();
                }
                Err(_) => {
                    self.metrics.counter(M_REOPEN_FAILED).inc();
                }
            }
        }
        let open = sessions.len() as i64;
        self.metrics.gauge(M_SESSIONS_OPEN).set(open);
        self.metrics.gauge(M_SESSIONS_PEAK).raise_to(open);
        drop(sessions);
        self.next_id.store(max_id + 1, Ordering::Relaxed);
    }

    /// Start the TTL janitor (pool mode with `evict_after` only).
    fn spawn_janitor(&self) {
        let (Some(shared), Some(ttl)) = (&self.pool, self.cfg.evict_after) else {
            return;
        };
        let shared = Arc::clone(shared);
        let sessions = Arc::clone(&self.sessions);
        let evicted = Arc::clone(&self.evicted);
        let evictions = self.metrics.counter(M_EVICTIONS);
        let open_gauge = self.metrics.gauge(M_SESSIONS_OPEN);
        let handle =
            thread::spawn(move || janitor(shared, sessions, evicted, ttl, evictions, open_gauge));
        self.threads.lock().unwrap().push(handle);
    }

    /// The admission policy.
    pub fn config(&self) -> &ConductorConfig {
        &self.cfg
    }

    /// Open sessions right now.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// Admit a new session over `sigma`, returning its id.
    ///
    /// # Errors
    ///
    /// [`ServeError::Capacity`] when [`ConductorConfig::max_sessions`]
    /// sessions are already open.
    pub fn open(&self, sigma: ConstraintSet) -> Result<u64, ServeError> {
        let mut sessions = self.sessions.lock().unwrap();
        if sessions.len() >= self.cfg.max_sessions {
            self.metrics.counter(M_SESSIONS_REJECTED).inc();
            return Err(ServeError::Capacity {
                max_sessions: self.cfg.max_sessions,
            });
        }
        let mut cfg = self.cfg.session.clone();
        if let Some(budget) = self.cfg.step_budget {
            cfg.chase.max_steps = Some(match cfg.chase.max_steps {
                Some(n) => n.min(budget),
                None => budget,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut builder = ChaseSession::builder(sigma.clone()).config(cfg.clone());
        if let Some(root) = &self.cfg.durable_root {
            builder = builder
                .durable(root.join(format!("session-{id}")))
                .durability(self.cfg.durability);
        }
        let session = builder.try_build()?;
        sessions.insert(id, self.spawn_slot(session, sigma, cfg));
        // Still under the sessions lock, so open/peak can never observe a
        // torn admission.
        self.metrics.counter(M_SESSIONS_OPENED).inc();
        let open = sessions.len() as i64;
        self.metrics.gauge(M_SESSIONS_OPEN).set(open);
        self.metrics.gauge(M_SESSIONS_PEAK).raise_to(open);
        Ok(id)
    }

    /// Wire a built (or reopened) session into its slot — pooled cell or
    /// legacy actor thread — the shared tail of [`Conductor::open`], warm
    /// restart, and post-eviction reopen.
    fn spawn_slot(&self, session: ChaseSession, sigma: ConstraintSet, cfg: SessionConfig) -> Slot {
        // An empty unpoisoned instance is vacuously quiescent even before
        // the trigger pool exists; a reopened non-quiescent state (snapshot
        // without replay) must route queries through the dispatcher's
        // quiesce.
        let quiescent = session.stats().quiescent
            || (session.instance().is_empty() && session.poisoned().is_none());
        let read = Arc::new(ReadState {
            metrics: HandleMetrics {
                apply_ns: self.metrics.histogram(M_APPLY_NS),
                query_ns: self.metrics.histogram(M_QUERY_NS),
                mailbox_depth: self.metrics.gauge(M_MAILBOX_DEPTH),
                publishes: self.metrics.counter(M_PUBLISH),
                publish_skipped: self.metrics.counter(M_PUBLISH_SKIPPED),
                recorder: session.recorder().clone(),
            },
            published: RwLock::new(Published {
                instance: Arc::new(session.instance().clone()),
                version: session.instance().version(),
                quiescent,
                poisoned: session.poisoned().cloned(),
            }),
            rewrites: Mutex::new(HashMap::new()),
            set: sigma,
            cfg,
        });
        let durable = session.is_durable();
        let core = SessionCore {
            session,
            snapshots: HashMap::new(),
            next_snapshot: 1,
        };
        match &self.pool {
            Some(shared) => {
                let cell = Arc::new(SessionCell {
                    core: Mutex::new(core),
                    mailbox: Mutex::new(MailboxState::default()),
                    read: Arc::clone(&read),
                    durable,
                    last_touch: AtomicU64::new(shared.now_ms()),
                });
                Slot {
                    handle: SessionHandle {
                        backend: Backend::Pool {
                            cell,
                            shared: Arc::clone(shared),
                        },
                        read,
                    },
                    thread: None,
                }
            }
            None => {
                let (tx, rx) = mpsc::channel();
                let actor_read = Arc::clone(&read);
                let thread = thread::spawn(move || actor(core, actor_read, rx));
                Slot {
                    handle: SessionHandle {
                        backend: Backend::Thread(tx),
                        read,
                    },
                    thread: Some(thread),
                }
            }
        }
    }

    /// Resolve a session id to a handle. A durable session evicted by the
    /// TTL janitor is **transparently warm-restarted** from its directory
    /// (counted in `chase_evictions_restored_total`); a non-durable
    /// evicted id fails with [`ServeError::Evicted`].
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if no such session was ever open (or
    /// it was explicitly closed); [`ServeError::Evicted`] for a TTL-evicted
    /// in-memory session; [`ServeError::Capacity`] when a warm-restart
    /// would exceed the session cap.
    pub fn route(&self, id: u64) -> Result<SessionHandle, ServeError> {
        let mut sessions = self.sessions.lock().unwrap();
        if let Some(slot) = sessions.get(&id) {
            slot.handle.touch();
            return Ok(slot.handle.clone());
        }
        let kind = self.evicted.lock().unwrap().get(&id).copied();
        match kind {
            None => Err(ServeError::UnknownSession(id)),
            Some(EvictedKind::Transient) => Err(ServeError::Evicted(id)),
            Some(EvictedKind::Durable) => {
                if sessions.len() >= self.cfg.max_sessions {
                    self.metrics.counter(M_SESSIONS_REJECTED).inc();
                    return Err(ServeError::Capacity {
                        max_sessions: self.cfg.max_sessions,
                    });
                }
                let root = self
                    .cfg
                    .durable_root
                    .as_ref()
                    .ok_or(ServeError::UnknownSession(id))?;
                let dir = root.join(format!("session-{id}"));
                let session = ChaseSession::open_with(&dir, self.cfg.durability)?;
                let sigma = session.constraints().clone();
                let cfg = session.config().clone();
                let slot = self.spawn_slot(session, sigma, cfg);
                let handle = slot.handle.clone();
                sessions.insert(id, slot);
                self.evicted.lock().unwrap().remove(&id);
                self.metrics.counter(M_EVICTIONS_RESTORED).inc();
                let open = sessions.len() as i64;
                self.metrics.gauge(M_SESSIONS_OPEN).set(open);
                self.metrics.gauge(M_SESSIONS_PEAK).raise_to(open);
                Ok(handle)
            }
        }
    }

    /// Close a session and free its slot. Legacy mode joins the actor
    /// thread (queued messages finish first); pool mode kills the mailbox
    /// — queued-but-unstarted messages fail with
    /// [`ServeError::SessionGone`], the in-flight one (if any) completes.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if no such session is open.
    pub fn close(&self, id: u64) -> Result<(), ServeError> {
        let slot = {
            let mut sessions = self.sessions.lock().unwrap();
            let slot = sessions.remove(&id).ok_or(ServeError::UnknownSession(id))?;
            self.metrics
                .gauge(M_SESSIONS_OPEN)
                .set(sessions.len() as i64);
            slot
        };
        retire(slot);
        Ok(())
    }

    /// Close every open session and stop the pool (used on server
    /// shutdown).
    pub fn shutdown(&self) {
        let slots: Vec<Slot> = {
            let mut sessions = self.sessions.lock().unwrap();
            let slots = sessions.drain().map(|(_, s)| s).collect();
            self.metrics.gauge(M_SESSIONS_OPEN).set(0);
            slots
        };
        for slot in slots {
            retire(slot);
        }
        if let Some(shared) = &self.pool {
            shared.stop.store(true, Ordering::Release);
            shared.available.notify_all();
        }
        let threads: Vec<_> = self.threads.lock().unwrap().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }

    /// Fleet-level lifecycle counters, read straight off the aggregate
    /// registry — no session mailbox is touched.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            open: self.session_count(),
            peak: self.metrics.gauge(M_SESSIONS_PEAK).get().max(0) as u64,
            opened_total: self.metrics.counter(M_SESSIONS_OPENED).get(),
            rejected_total: self.metrics.counter(M_SESSIONS_REJECTED).get(),
        }
    }

    /// The server-wide aggregate registry (session gauges, apply/query
    /// latency histograms, publish counters, pool/eviction series).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// One server-wide metrics snapshot: the aggregate registry plus every
    /// *open* session's engine phase histograms (merged into one
    /// `chase_phase_ns{phase="…"}` family) and event-ring drop counts.
    ///
    /// Reads only lock-free recorder sinks and the session map — never a
    /// session mailbox — so a metrics scrape cannot block behind a
    /// tenant's in-flight apply. Sessions closed before the scrape no
    /// longer contribute their phase timings.
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        let recorders: Vec<Recorder> = self
            .sessions
            .lock()
            .unwrap()
            .values()
            .map(|s| s.handle.read.metrics.recorder.clone())
            .collect();
        let mut snap = self.metrics.snapshot();
        for rec in recorders {
            let mut one = RegistrySnapshot::new();
            rec.export_phases(M_PHASE_NS, &mut one);
            one.set_counter(M_EVENTS_DROPPED, rec.events_dropped());
            snap.merge(&one);
        }
        snap
    }

    /// [`Conductor::metrics_snapshot`] rendered as Prometheus-style text
    /// exposition (the payload behind the protocol's `Metrics` request).
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().render()
    }
}

impl Drop for Conductor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Tear one slot down: join the legacy actor, or kill the pooled mailbox.
fn retire(slot: Slot) {
    let Slot { handle, thread } = slot;
    match &handle.backend {
        Backend::Thread(_) => {
            let _ = handle.post(SessionMsg::Close);
            if let Some(t) = thread {
                let _ = t.join();
            }
        }
        Backend::Pool { cell, .. } => {
            kill_mailbox(cell);
        }
    }
}

/// Mark a pooled mailbox dead and drop everything still queued, returning
/// the queue's contribution to the depth gauge. Posts fail from here on;
/// the cell is never requeued (a worker holding it notices `dead` and
/// drops out).
fn kill_mailbox(cell: &SessionCell) {
    let mut mb = cell.mailbox.lock().unwrap();
    mb.dead = true;
    mb.scheduled = false;
    let dropped = mb.queue.len();
    mb.queue.clear();
    cell.read.metrics.mailbox_depth.add(-(dropped as i64));
}

/// The shared dispatcher: one message against one session, identical in
/// pool and legacy modes. Publishes **before** releasing the reply for
/// every mutating message — the read-your-writes guarantee.
fn process(core: &mut SessionCore, read: &ReadState, msg: SessionMsg) -> Flow {
    match msg {
        SessionMsg::Apply { batch, reply } => {
            let out = core.session.apply(batch);
            // Publish before replying: once the client sees the ack it
            // is guaranteed to read its own writes from the snapshot.
            publish(&core.session, read);
            let _ = reply.send(out);
        }
        SessionMsg::Query { q, opts, reply } => {
            let out = core.session.query((&q, opts));
            // The query may have quiesced a budget-stopped chase.
            publish(&core.session, read);
            let _ = reply.send(out);
        }
        SessionMsg::Snapshot { reply } => {
            let id = core.next_snapshot;
            core.next_snapshot += 1;
            core.snapshots.insert(id, core.session.snapshot());
            let _ = reply.send(id);
        }
        SessionMsg::Restore { snapshot, reply } => {
            let out = match core.snapshots.get(&snapshot) {
                // Guard what `ChaseSession::restore` would panic on — a
                // panic poisons the whole session, a reply only fails the
                // one request.
                Some(_)
                    if core.session.is_durable()
                        && core.session.config().chase.mode == ChaseMode::Oblivious =>
                {
                    Err(ServeError::Durability(
                        "restore on a durable oblivious session is unsupported \
                         (its log cannot be re-anchored)"
                            .to_string(),
                    ))
                }
                Some(snap) => {
                    core.session.restore(snap);
                    Ok(())
                }
                None => Err(ServeError::UnknownSnapshot(snapshot)),
            };
            publish(&core.session, read);
            let _ = reply.send(out);
        }
        SessionMsg::Stats { reply } => {
            let _ = reply.send(core.session.stats());
        }
        SessionMsg::Persist { reply } => {
            let _ = reply.send(core.session.persist());
        }
        SessionMsg::InjectPanic => panic!("injected dispatch panic (test hook)"),
        SessionMsg::Close => return Flow::Stop,
    }
    Flow::Continue
}

/// Whether the dispatcher should keep going after a message.
enum Flow {
    Continue,
    Stop,
}

/// The legacy session actor (`workers: 0`): drains its own mailbox on a
/// dedicated thread through the same [`process`] dispatcher.
fn actor(mut core: SessionCore, read: Arc<ReadState>, rx: Receiver<SessionMsg>) {
    for msg in &rx {
        read.metrics.mailbox_depth.add(-1);
        if let Flow::Stop = process(&mut core, &read, msg) {
            break;
        }
    }
    // Anything still queued behind the Close is dropped with the receiver;
    // return its contribution to the depth gauge.
    for _ in rx.try_iter() {
        read.metrics.mailbox_depth.add(-1);
    }
}

/// One pool worker: pull a scheduled session, dispatch it, repeat.
fn pool_worker(shared: Arc<PoolShared>) {
    loop {
        let cell = {
            let mut queue = shared.run_queue.lock().unwrap();
            loop {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                if let Some(cell) = queue.pop_front() {
                    shared.queue_depth.add(-1);
                    break cell;
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        dispatch(&cell, &shared);
    }
}

/// Drain one session's mailbox up to the dispatch budget. The session's
/// `scheduled` flag is already set (we are its single drainer); it is
/// cleared when the mailbox runs dry, or the session is requeued when the
/// budget expires with messages left. A panic in [`process`] poisons the
/// session, kills its mailbox and bumps `chase_pool_panics_total` — the
/// worker survives.
fn dispatch(cell: &Arc<SessionCell>, shared: &Arc<PoolShared>) {
    shared.dispatches.inc();
    let mut core = cell.core.lock().unwrap();
    for _ in 0..shared.dispatch_budget {
        let msg = {
            let mut mb = cell.mailbox.lock().unwrap();
            if mb.dead {
                let dropped = mb.queue.len();
                mb.queue.clear();
                mb.scheduled = false;
                cell.read.metrics.mailbox_depth.add(-(dropped as i64));
                return;
            }
            match mb.queue.pop_front() {
                Some(m) => m,
                None => {
                    mb.scheduled = false;
                    return;
                }
            }
        };
        cell.read.metrics.mailbox_depth.add(-1);
        shared.messages.inc();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process(&mut core, &cell.read, msg)
        }));
        match outcome {
            Ok(Flow::Continue) => {}
            Ok(Flow::Stop) => {
                // `Close` is never posted to pooled sessions, but honor it.
                kill_mailbox(cell);
                return;
            }
            Err(_) => {
                shared.panics.inc();
                // Poison the read surface so fast-path reads fail loudly,
                // then kill the mailbox: later posts get SessionGone and
                // the session is never requeued.
                cell.read.published.write().unwrap().poisoned = Some(StopReason::Failed);
                kill_mailbox(cell);
                return;
            }
        }
    }
    drop(core);
    // Budget spent: hand the session back if more work arrived meanwhile
    // (`scheduled` stays true across the requeue — still our claim).
    let requeue = {
        let mut mb = cell.mailbox.lock().unwrap();
        if mb.dead {
            let dropped = mb.queue.len();
            mb.queue.clear();
            mb.scheduled = false;
            cell.read.metrics.mailbox_depth.add(-(dropped as i64));
            false
        } else if mb.queue.is_empty() {
            mb.scheduled = false;
            false
        } else {
            true
        }
    };
    if requeue {
        shared.enqueue(Arc::clone(cell));
    }
}

/// The eviction janitor: periodically tear down sessions idle past the
/// TTL. Durable sessions persist **before** teardown (WAL + snapshot on
/// disk first, slot freed second — a kill between the two only costs the
/// compaction); non-durable sessions are discarded and their id recorded
/// so routes answer [`ServeError::Evicted`].
fn janitor(
    shared: Arc<PoolShared>,
    sessions: Arc<Mutex<HashMap<u64, Slot>>>,
    evicted: Arc<Mutex<HashMap<u64, EvictedKind>>>,
    ttl: Duration,
    evictions: Counter,
    open_gauge: Gauge,
) {
    let tick = (ttl / 4).clamp(Duration::from_millis(10), Duration::from_millis(500));
    let nap = tick.min(Duration::from_millis(25));
    let mut slept = Duration::ZERO;
    loop {
        thread::sleep(nap);
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        slept += nap;
        if slept < tick {
            continue;
        }
        slept = Duration::ZERO;
        sweep(&shared, &sessions, &evicted, ttl, &evictions, &open_gauge);
    }
}

/// One janitor pass over the fleet. Runs under the sessions-map lock so a
/// concurrent `route` can never observe a half-evicted session (and a
/// durable reopen can never race the persist).
fn sweep(
    shared: &PoolShared,
    sessions: &Mutex<HashMap<u64, Slot>>,
    evicted: &Mutex<HashMap<u64, EvictedKind>>,
    ttl: Duration,
    evictions: &Counter,
    open_gauge: &Gauge,
) {
    let ttl_ms = ttl.as_millis() as u64;
    let now = shared.now_ms();
    let mut sessions = sessions.lock().unwrap();
    let idle: Vec<u64> = sessions
        .iter()
        .filter_map(|(id, slot)| {
            let Backend::Pool { cell, .. } = &slot.handle.backend else {
                return None;
            };
            let touched = cell.last_touch.load(Ordering::Relaxed);
            (now.saturating_sub(touched) >= ttl_ms).then_some(*id)
        })
        .collect();
    for id in idle {
        let Some(slot) = sessions.get(&id) else {
            continue;
        };
        let Backend::Pool { cell, .. } = &slot.handle.backend else {
            continue;
        };
        {
            // Busy sessions (queued messages, or claimed by a worker) are
            // never evicted; `dead` means a close raced us.
            let mut mb = cell.mailbox.lock().unwrap();
            if mb.dead || mb.scheduled || !mb.queue.is_empty() {
                continue;
            }
            mb.dead = true;
        }
        let cell = Arc::clone(cell);
        let slot = sessions.remove(&id).unwrap();
        let kind = if cell.durable {
            // Persist-before-teardown: the on-disk state must cover the
            // session before its slot disappears. A failed persist is
            // tolerable — the WAL already holds every acknowledged batch.
            let _ = cell.core.lock().unwrap().session.persist();
            EvictedKind::Durable
        } else {
            EvictedKind::Transient
        };
        evicted.lock().unwrap().insert(id, kind);
        evictions.inc();
        open_gauge.set(sessions.len() as i64);
        drop(slot);
    }
}

/// Republish the session's read snapshot if anything observable moved.
/// The [`Instance::version`] comparison is the copy-on-read filter: a
/// duplicate-only batch leaves the version alone, so readers keep sharing
/// the old `Arc` and no clone happens.
fn publish(session: &ChaseSession, read: &ReadState) {
    let stats = session.stats();
    let version = session.instance().version();
    let poisoned = session.poisoned().cloned();
    let current = read.published.read().unwrap();
    let stale = current.version != version
        || current.quiescent != stats.quiescent
        || current.poisoned != poisoned;
    if !stale {
        read.metrics.publish_skipped.inc();
        return;
    }
    let fresh_instance = if current.version != version {
        Arc::new(session.instance().clone())
    } else {
        Arc::clone(&current.instance)
    };
    drop(current);
    *read.published.write().unwrap() = Published {
        instance: fresh_instance,
        version,
        quiescent: stats.quiescent,
        poisoned,
    };
    read.metrics.publishes.inc();
    read.metrics.recorder.event(
        EventKind::SnapshotPublish,
        version,
        u64::from(stats.quiescent),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::Instance;

    fn atoms(text: &str) -> Vec<Atom> {
        Instance::parse(text).unwrap().atoms()
    }

    fn sigma(text: &str) -> ConstraintSet {
        ConstraintSet::parse(text).unwrap()
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "chase-conductor-test-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn open_route_apply_query_close() {
        let conductor = Conductor::new(ConductorConfig::default());
        let id = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let h = conductor.route(id).unwrap();
        let out = h.apply(atoms("e(a,b).")).unwrap();
        assert_eq!(out.total_facts, 2);
        let q = ConjunctiveQuery::parse("q(X) <- e(X,b)").unwrap();
        let ans = h.query(&q, QueryOpts::default()).unwrap();
        assert_eq!(ans.len(), 1);
        let stats = h.stats().unwrap();
        assert_eq!(stats.epoch, 1);
        assert!(stats.quiescent);
        conductor.close(id).unwrap();
        assert_eq!(
            conductor.route(id).unwrap_err(),
            ServeError::UnknownSession(id)
        );
        // The handle outlives the slot but its mailbox is dead.
        assert_eq!(h.stats().unwrap_err(), ServeError::SessionGone);
    }

    #[test]
    fn capacity_is_enforced_and_freed_by_close() {
        let conductor = Conductor::new(ConductorConfig {
            max_sessions: 2,
            ..ConductorConfig::default()
        });
        let a = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let _b = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        assert_eq!(
            conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap_err(),
            ServeError::Capacity { max_sessions: 2 }
        );
        conductor.close(a).unwrap();
        conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
    }

    #[test]
    fn step_budget_clamps_admitted_sessions() {
        let conductor = Conductor::new(ConductorConfig {
            step_budget: Some(3),
            ..ConductorConfig::default()
        });
        // Unbounded growth: each fact spawns a longer chain.
        let id = conductor.open(sigma("e(X,Y) -> e(Y,Z)")).unwrap();
        let h = conductor.route(id).unwrap();
        let out = h.apply(atoms("e(a,b).")).unwrap();
        assert!(matches!(out.reason, StopReason::StepLimit(_)));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let conductor = Conductor::new(ConductorConfig::default());
        let id = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let h = conductor.route(id).unwrap();
        h.apply(atoms("e(a,b).")).unwrap();
        let snap = h.snapshot().unwrap();
        h.apply(atoms("e(c,d).")).unwrap();
        assert_eq!(h.stats().unwrap().total_facts, 4);
        h.restore(snap).unwrap();
        assert_eq!(h.stats().unwrap().total_facts, 2);
        // Restored state is published: reads see the rewound instance.
        let q = ConjunctiveQuery::parse("q(X) <- e(c,X)").unwrap();
        assert!(h.query(&q, QueryOpts::default()).unwrap().is_empty());
        assert_eq!(h.restore(99).unwrap_err(), ServeError::UnknownSnapshot(99));
    }

    #[test]
    fn queries_during_apply_see_the_pre_batch_snapshot() {
        let conductor = Conductor::new(ConductorConfig {
            step_budget: None,
            ..ConductorConfig::default()
        });
        let id = conductor.open(sigma("e(X,Y), e(Y,Z) -> e(X,Z)")).unwrap();
        let h = conductor.route(id).unwrap();
        // Seed a small chain, then queue a batch whose transitive closure
        // takes real work.
        h.apply(atoms("e(a,b).")).unwrap();
        let mut big = String::new();
        for i in 0..60 {
            big.push_str(&format!("p{i}(x). e(n{i},n{}).", i + 1));
        }
        let pending = h.apply_async(atoms(&big));
        let q = ConjunctiveQuery::parse("q(X) <- e(a,X)").unwrap();
        // Issued while the apply may still be chasing: must answer from a
        // coherent snapshot, i.e. either exactly pre-batch or post-batch.
        let mid = h.query(&q, QueryOpts::default()).unwrap();
        assert_eq!(mid.len(), 1); // `a` reaches only `b` in both states
        pending.recv().unwrap().unwrap();
        let after = h.query(&q, QueryOpts::default()).unwrap();
        assert_eq!(after.len(), 1);
        assert!(h.stats().unwrap().total_facts > 120);
    }

    #[test]
    fn poisoned_sessions_fail_reads_on_the_fast_path() {
        let conductor = Conductor::new(ConductorConfig::default());
        let id = conductor.open(sigma("p(X), p(Y) -> X = Y")).unwrap();
        let h = conductor.route(id).unwrap();
        let err = h.apply(atoms("p(a). p(b).")).unwrap();
        assert_eq!(err.reason, StopReason::Failed);
        let q = ConjunctiveQuery::parse("q(X) <- p(X)").unwrap();
        assert_eq!(
            h.query(&q, QueryOpts::default()).unwrap_err(),
            ServeError::Poisoned(StopReason::Failed)
        );
    }

    #[test]
    fn fleet_stats_track_admission_lifecycle() {
        let conductor = Conductor::new(ConductorConfig {
            max_sessions: 2,
            ..ConductorConfig::default()
        });
        let a = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let b = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        assert!(conductor.open(sigma("e(X,Y) -> e(Y,X)")).is_err());
        conductor.close(a).unwrap();
        let s = conductor.stats();
        assert_eq!(s.open, 1);
        assert_eq!(s.peak, 2);
        assert_eq!(s.opened_total, 2);
        assert_eq!(s.rejected_total, 1);
        conductor.close(b).unwrap();
        assert_eq!(conductor.stats().open, 0);
        assert_eq!(conductor.stats().peak, 2);
    }

    #[test]
    fn metrics_snapshot_merges_latency_and_phases() {
        let conductor = Conductor::new(ConductorConfig::default());
        let id = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let h = conductor.route(id).unwrap();
        h.apply(atoms("e(a,b).")).unwrap();
        let q = ConjunctiveQuery::parse("q(X) <- e(X,b)").unwrap();
        h.query(&q, QueryOpts::default()).unwrap();
        h.apply(atoms("e(a,b).")).unwrap(); // duplicate: publish skipped

        let snap = conductor.metrics_snapshot();
        assert_eq!(snap.gauge(M_SESSIONS_OPEN), Some(1));
        assert_eq!(snap.gauge(M_MAILBOX_DEPTH), Some(0));
        let apply = snap.histogram(M_APPLY_NS).unwrap();
        assert_eq!(apply.count(), 2);
        assert!(apply.percentile(0.5) > 0);
        assert_eq!(snap.histogram(M_QUERY_NS).unwrap().count(), 1);
        assert_eq!(snap.counter(M_PUBLISH), Some(1));
        assert!(snap.counter(M_PUBLISH_SKIPPED).unwrap() >= 1);
        // The session's engine phases surface under the labeled family.
        let insert = snap.histogram("chase_phase_ns{phase=\"insert\"}").unwrap();
        assert!(insert.count() > 0);
        // The pool reports its shape and work.
        assert!(snap.gauge(M_POOL_WORKERS).unwrap() >= 1);
        assert!(snap.counter(M_POOL_DISPATCHES).unwrap() > 0);
        assert!(snap.counter(M_POOL_MESSAGES).unwrap() > 0);

        let text = conductor.metrics_text();
        assert!(text.contains("chase_sessions_open 1"));
        assert!(text.contains("chase_apply_ns_p99_ns"));
        assert!(text.contains("chase_phase_ns_p50_ns{phase=\"insert\"}"));
        assert!(text.contains("chase_pool_workers"));
    }

    #[test]
    fn duplicate_batches_do_not_republish() {
        let conductor = Conductor::new(ConductorConfig::default());
        let id = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let h = conductor.route(id).unwrap();
        h.apply(atoms("e(a,b).")).unwrap();
        let before = Arc::as_ptr(&h.read.published.read().unwrap().instance);
        h.apply(atoms("e(a,b).")).unwrap();
        let after = Arc::as_ptr(&h.read.published.read().unwrap().instance);
        assert_eq!(before, after, "duplicate-only batch must not re-clone");
    }

    #[test]
    fn many_sessions_share_a_small_pool() {
        // 24 sessions, 2 workers: every apply completes (no starvation)
        // and reads see their own writes immediately after the ack.
        let conductor = Conductor::new(ConductorConfig {
            workers: 2,
            dispatch_budget: 4,
            max_sessions: 64,
            ..ConductorConfig::default()
        });
        let mut pending = Vec::new();
        for i in 0..24 {
            let id = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
            let h = conductor.route(id).unwrap();
            pending.push((id, h.apply_async(atoms(&format!("e(a{i},b{i})."))), h));
        }
        let q = ConjunctiveQuery::parse("q(X,Y) <- e(X,Y)").unwrap();
        for (_, rx, h) in &pending {
            rx.recv().unwrap().unwrap();
            assert_eq!(h.query(&q, QueryOpts::default()).unwrap().len(), 2);
        }
        let snap = conductor.metrics_snapshot();
        assert_eq!(snap.gauge(M_POOL_WORKERS), Some(2));
        assert!(snap.counter(M_POOL_MESSAGES).unwrap() >= 24);
    }

    #[test]
    fn legacy_thread_mode_still_serves() {
        let conductor = Conductor::new(ConductorConfig {
            workers: 0,
            ..ConductorConfig::default()
        });
        let id = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let h = conductor.route(id).unwrap();
        h.apply(atoms("e(a,b).")).unwrap();
        let q = ConjunctiveQuery::parse("q(X) <- e(X,b)").unwrap();
        assert_eq!(h.query(&q, QueryOpts::default()).unwrap().len(), 1);
        conductor.close(id).unwrap();
    }

    #[test]
    fn a_panicking_dispatch_poisons_only_its_session() {
        let conductor = Conductor::new(ConductorConfig {
            workers: 1,
            ..ConductorConfig::default()
        });
        let a = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let b = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let ha = conductor.route(a).unwrap();
        let hb = conductor.route(b).unwrap();
        ha.apply(atoms("e(a,b).")).unwrap();
        ha.inject_panic();
        // The single worker survives the panic and keeps serving b.
        hb.apply(atoms("e(c,d).")).unwrap();
        let q = ConjunctiveQuery::parse("q(X) <- e(X,d)").unwrap();
        assert_eq!(hb.query(&q, QueryOpts::default()).unwrap().len(), 1);
        // a is poisoned on the fast path and gone on the mailbox path.
        let q = ConjunctiveQuery::parse("q(X) <- e(X,b)").unwrap();
        assert_eq!(
            ha.query(&q, QueryOpts::default()).unwrap_err(),
            ServeError::Poisoned(StopReason::Failed)
        );
        assert_eq!(ha.stats().unwrap_err(), ServeError::SessionGone);
        assert_eq!(conductor.metrics_snapshot().counter(M_POOL_PANICS), Some(1));
        // The slot is still admitted until closed; close frees it.
        conductor.close(a).unwrap();
    }

    #[test]
    fn idle_transient_sessions_are_evicted() {
        let conductor = Conductor::new(ConductorConfig {
            workers: 2,
            evict_after: Some(Duration::from_millis(80)),
            ..ConductorConfig::default()
        });
        let id = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let h = conductor.route(id).unwrap();
        h.apply(atoms("e(a,b).")).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while conductor.session_count() > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(conductor.session_count(), 0, "janitor never evicted");
        assert_eq!(conductor.route(id).unwrap_err(), ServeError::Evicted(id));
        assert_eq!(conductor.metrics_snapshot().counter(M_EVICTIONS), Some(1));
    }

    #[test]
    fn evicted_durable_sessions_warm_restart_on_route() {
        let dir = temp_dir("evict-reopen");
        let conductor = Conductor::new(ConductorConfig {
            workers: 2,
            evict_after: Some(Duration::from_millis(80)),
            durable_root: Some(dir.clone()),
            ..ConductorConfig::default()
        });
        let id = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let h = conductor.route(id).unwrap();
        h.apply(atoms("e(a,b).")).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while conductor.session_count() > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(conductor.session_count(), 0, "janitor never evicted");
        // Routing the evicted id transparently reopens from disk.
        let h2 = conductor.route(id).unwrap();
        let stats = h2.stats().unwrap();
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.total_facts, 2);
        let q = ConjunctiveQuery::parse("q(X) <- e(X,b)").unwrap();
        assert_eq!(h2.query(&q, QueryOpts::default()).unwrap().len(), 1);
        let snap = conductor.metrics_snapshot();
        assert!(snap.counter(M_EVICTIONS).unwrap() >= 1);
        assert!(snap.counter(M_EVICTIONS_RESTORED).unwrap() >= 1);
        drop(conductor);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
