//! The multi-tenant session runtime: one **actor thread per session**,
//! fronted by a [`Conductor`] that creates, routes and admits sessions.
//!
//! ## Actors and mailboxes
//!
//! Every open session owns a dedicated thread holding the [`ChaseSession`]
//! — warm trigger pool, plan cache, rewriting cache and all. The thread
//! drains a typed mailbox (`SessionMsg`: `Apply`/`Query`/`Snapshot`/
//! `Restore`/`Stats`/`Close`), so all mutation of a session is serialized
//! by construction and the engine state needs no locks at all. Callers
//! hold a [`SessionHandle`] — a cheap clone of the mailbox sender plus the
//! session's published read surface — and get replies over per-request
//! channels.
//!
//! ## Concurrent reads during an in-flight apply
//!
//! After every mutating message the actor *publishes* an
//! `Arc<`[`Instance`]`>` snapshot of the chased instance — but only when
//! [`Instance::version`] actually moved, so duplicate-only batches never
//! pay the copy (**copy-on-read**: readers share the published `Arc`,
//! writers replace it). [`SessionHandle::query`] evaluates on the *calling*
//! thread against that published snapshot whenever it is quiescent, so a
//! certain-answer read admitted while a large apply is chasing inside the
//! actor returns immediately with exactly the pre-batch state — it never
//! queues behind the write. Publication happens *before* the apply's reply
//! is released, so a client that saw its apply acknowledged is guaranteed
//! to read its own writes.
//!
//! ## Admission
//!
//! The conductor enforces a **global session cap** (admission fails with
//! [`ServeError::Capacity`]) and clamps every admitted session's chase
//! budget to the configured **per-session step budget**, so one runaway
//! tenant can neither starve the machine of threads nor chase unboundedly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread;

use chase_core::{Atom, ConjunctiveQuery, ConstraintSet, Instance, Term};
use chase_engine::StopReason;

use crate::session::{
    choose_rewriting, ChaseOutcome, ChaseSession, QueryOpts, ServeError, SessionConfig,
    SessionSnapshot, SessionStats,
};

/// Admission policy for a [`Conductor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConductorConfig {
    /// Global cap on concurrently open sessions (each owns one thread).
    pub max_sessions: usize,
    /// Per-session chase step budget. Every admitted session's
    /// `chase.max_steps` is clamped to at most this, whatever the session
    /// template asks for.
    pub step_budget: Option<usize>,
    /// Session template: configuration every admitted session starts from.
    pub session: SessionConfig,
}

impl Default for ConductorConfig {
    fn default() -> ConductorConfig {
        ConductorConfig {
            max_sessions: 64,
            step_budget: Some(100_000),
            session: SessionConfig::default(),
        }
    }
}

/// The session's read surface, shared between its actor (publisher) and
/// every handle (readers).
struct ReadState {
    /// The latest published snapshot.
    published: RwLock<Published>,
    /// Rewriting decisions for the concurrent read path, keyed by query
    /// text — the handle-side mirror of the session's own cache, computed
    /// by the same [`choose_rewriting`].
    rewrites: Mutex<HashMap<String, Option<ConjunctiveQuery>>>,
    /// The session's constraint set (for rewriting on the read path).
    set: ConstraintSet,
    /// The session's configuration (for rewriting policy).
    cfg: SessionConfig,
}

/// One published state: an immutable chased instance plus the flags a
/// reader needs to decide whether it may answer from it.
#[derive(Clone)]
struct Published {
    /// The chased instance readers evaluate against.
    instance: Arc<Instance>,
    /// [`Instance::version`] at publication — the republish filter.
    version: u64,
    /// Was the session quiescent (fully chased, unpoisoned) when this was
    /// published? Only quiescent snapshots may answer queries locally.
    quiescent: bool,
    /// Terminal stop, if the session is poisoned.
    poisoned: Option<StopReason>,
}

/// The typed mailbox protocol an actor drains. One variant per operation;
/// every variant that answers carries its own reply sender.
enum SessionMsg {
    /// Apply an update batch and continue the chase warm.
    Apply {
        batch: Vec<Atom>,
        reply: Sender<Result<ChaseOutcome, ServeError>>,
    },
    /// Answer a query on the actor thread (the quiesce-first slow path;
    /// quiescent reads bypass the mailbox entirely).
    Query {
        q: ConjunctiveQuery,
        opts: QueryOpts,
        reply: Sender<Result<Vec<Vec<Term>>, ServeError>>,
    },
    /// Take a snapshot into the actor-side store; replies with its id.
    Snapshot { reply: Sender<u64> },
    /// Rewind to a stored snapshot.
    Restore {
        snapshot: u64,
        reply: Sender<Result<(), ServeError>>,
    },
    /// Read the session's counters.
    Stats { reply: Sender<SessionStats> },
    /// Drop the session: the actor breaks its loop and the thread exits.
    Close,
}

/// A clonable address of one session: the mailbox sender plus the
/// published read surface. All methods are `&self`; clones address the
/// same session.
#[derive(Clone)]
pub struct SessionHandle {
    tx: Sender<SessionMsg>,
    read: Arc<ReadState>,
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle").finish_non_exhaustive()
    }
}

impl SessionHandle {
    /// Apply an update batch, blocking until the warm re-chase finishes.
    pub fn apply(&self, batch: Vec<Atom>) -> Result<ChaseOutcome, ServeError> {
        self.apply_async(batch)
            .recv()
            .map_err(|_| ServeError::SessionGone)?
    }

    /// Queue an update batch and return immediately; the receiver yields
    /// the outcome when the actor finishes chasing it. Queries issued in
    /// the meantime are answered from the pre-batch snapshot.
    pub fn apply_async(&self, batch: Vec<Atom>) -> Receiver<Result<ChaseOutcome, ServeError>> {
        let (reply, rx) = mpsc::channel();
        if self
            .tx
            .send(SessionMsg::Apply {
                batch,
                reply: reply.clone(),
            })
            .is_err()
        {
            // Actor gone: make the receiver yield the error instead of
            // hanging up empty.
            let _ = reply.send(Err(ServeError::SessionGone));
        }
        rx
    }

    /// Answer a conjunctive query. When the published snapshot is
    /// quiescent this evaluates **on the calling thread** against that
    /// snapshot — concurrent with any in-flight apply, which it does not
    /// wait for. Otherwise (mid-budget stop pending, or nothing published
    /// yet after a restore) it falls back to the actor, which quiesces
    /// first, exactly like [`ChaseSession::query`].
    pub fn query(
        &self,
        q: &ConjunctiveQuery,
        opts: QueryOpts,
    ) -> Result<Vec<Vec<Term>>, ServeError> {
        let published = self.read.published.read().unwrap().clone();
        if let Some(r) = published.poisoned {
            return Err(ServeError::Poisoned(r));
        }
        if published.quiescent {
            let target = if opts.sqo { self.rewritten(q) } else { None };
            let target = target.as_ref().unwrap_or(q);
            return Ok(if opts.all {
                target.evaluate(&published.instance)
            } else {
                target.evaluate_certain(&published.instance)
            });
        }
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(SessionMsg::Query {
                q: q.clone(),
                opts,
                reply,
            })
            .map_err(|_| ServeError::SessionGone)?;
        rx.recv().map_err(|_| ServeError::SessionGone)?
    }

    /// The read path's cached rewriting decision for `q` (mirrors the
    /// session-side cache; both call [`choose_rewriting`]).
    fn rewritten(&self, q: &ConjunctiveQuery) -> Option<ConjunctiveQuery> {
        if !self.read.cfg.use_sqo {
            return None;
        }
        let key = q.to_string();
        let mut cache = self.read.rewrites.lock().unwrap();
        if let Some(cached) = cache.get(&key) {
            return cached.clone();
        }
        let choice = choose_rewriting(q, &self.read.set, &self.read.cfg);
        cache.insert(key, choice.clone());
        choice
    }

    /// Take a server-side snapshot; returns its id for [`SessionHandle::restore`].
    pub fn snapshot(&self) -> Result<u64, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(SessionMsg::Snapshot { reply })
            .map_err(|_| ServeError::SessionGone)?;
        rx.recv().map_err(|_| ServeError::SessionGone)
    }

    /// Rewind the session to a snapshot taken earlier on it.
    pub fn restore(&self, snapshot: u64) -> Result<(), ServeError> {
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(SessionMsg::Restore { snapshot, reply })
            .map_err(|_| ServeError::SessionGone)?;
        rx.recv().map_err(|_| ServeError::SessionGone)?
    }

    /// The published instance rendered as fact text (the protocol's
    /// `Dump`). Served from the read snapshot like [`SessionHandle::query`],
    /// so it never waits behind an in-flight apply.
    pub fn dump(&self) -> Result<String, ServeError> {
        let published = self.read.published.read().unwrap().clone();
        if let Some(r) = published.poisoned {
            return Err(ServeError::Poisoned(r));
        }
        Ok(published.instance.to_string())
    }

    /// One coherent reading of the session's counters.
    pub fn stats(&self) -> Result<SessionStats, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(SessionMsg::Stats { reply })
            .map_err(|_| ServeError::SessionGone)?;
        rx.recv().map_err(|_| ServeError::SessionGone)
    }
}

/// One live session as the conductor tracks it.
struct Slot {
    handle: SessionHandle,
    thread: thread::JoinHandle<()>,
}

/// Creates, routes and admits sessions: the server's front object.
///
/// `open` spawns a session actor (subject to the global cap and the
/// per-session step budget), `route` resolves a session id to a
/// [`SessionHandle`], `close` tears the actor down and frees its slot.
/// All methods take `&self`; the conductor is shared behind an `Arc`
/// across connection threads.
pub struct Conductor {
    cfg: ConductorConfig,
    sessions: Mutex<HashMap<u64, Slot>>,
    next_id: AtomicU64,
}

impl Conductor {
    /// A conductor with the given admission policy.
    pub fn new(cfg: ConductorConfig) -> Conductor {
        Conductor {
            cfg,
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// The admission policy.
    pub fn config(&self) -> &ConductorConfig {
        &self.cfg
    }

    /// Open sessions right now.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// Admit a new session over `sigma`, returning its id.
    ///
    /// # Errors
    ///
    /// [`ServeError::Capacity`] when [`ConductorConfig::max_sessions`]
    /// sessions are already open.
    pub fn open(&self, sigma: ConstraintSet) -> Result<u64, ServeError> {
        let mut sessions = self.sessions.lock().unwrap();
        if sessions.len() >= self.cfg.max_sessions {
            return Err(ServeError::Capacity {
                max_sessions: self.cfg.max_sessions,
            });
        }
        let mut cfg = self.cfg.session.clone();
        if let Some(budget) = self.cfg.step_budget {
            cfg.chase.max_steps = Some(match cfg.chase.max_steps {
                Some(n) => n.min(budget),
                None => budget,
            });
        }
        let session = ChaseSession::builder(sigma.clone())
            .config(cfg.clone())
            .build();
        let read = Arc::new(ReadState {
            published: RwLock::new(Published {
                instance: Arc::new(session.instance().clone()),
                version: session.instance().version(),
                quiescent: true,
                poisoned: None,
            }),
            rewrites: Mutex::new(HashMap::new()),
            set: sigma,
            cfg,
        });
        let (tx, rx) = mpsc::channel();
        let actor_read = Arc::clone(&read);
        let thread = thread::spawn(move || actor(session, actor_read, rx));
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        sessions.insert(
            id,
            Slot {
                handle: SessionHandle { tx, read },
                thread,
            },
        );
        Ok(id)
    }

    /// Resolve a session id to a handle.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if no such session is open.
    pub fn route(&self, id: u64) -> Result<SessionHandle, ServeError> {
        self.sessions
            .lock()
            .unwrap()
            .get(&id)
            .map(|s| s.handle.clone())
            .ok_or(ServeError::UnknownSession(id))
    }

    /// Close a session: stop its actor, join its thread, free its slot.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if no such session is open.
    pub fn close(&self, id: u64) -> Result<(), ServeError> {
        let slot = self
            .sessions
            .lock()
            .unwrap()
            .remove(&id)
            .ok_or(ServeError::UnknownSession(id))?;
        let _ = slot.handle.tx.send(SessionMsg::Close);
        let _ = slot.thread.join();
        Ok(())
    }

    /// Close every open session (used on server shutdown).
    pub fn shutdown(&self) {
        let slots: Vec<Slot> = self
            .sessions
            .lock()
            .unwrap()
            .drain()
            .map(|(_, s)| s)
            .collect();
        for slot in slots {
            let _ = slot.handle.tx.send(SessionMsg::Close);
            let _ = slot.thread.join();
        }
    }
}

impl Drop for Conductor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The session actor: drains the mailbox, serializing all mutation of the
/// owned [`ChaseSession`], and republishes the read snapshot after every
/// message that may have moved the instance.
fn actor(mut session: ChaseSession, read: Arc<ReadState>, rx: Receiver<SessionMsg>) {
    let mut snapshots: HashMap<u64, SessionSnapshot> = HashMap::new();
    let mut next_snapshot: u64 = 1;
    for msg in rx {
        match msg {
            SessionMsg::Apply { batch, reply } => {
                let out = session.apply(batch);
                // Publish before replying: once the client sees the ack it
                // is guaranteed to read its own writes from the snapshot.
                publish(&session, &read);
                let _ = reply.send(out);
            }
            SessionMsg::Query { q, opts, reply } => {
                let out = session.query((&q, opts));
                // The query may have quiesced a budget-stopped chase.
                publish(&session, &read);
                let _ = reply.send(out);
            }
            SessionMsg::Snapshot { reply } => {
                let id = next_snapshot;
                next_snapshot += 1;
                snapshots.insert(id, session.snapshot());
                let _ = reply.send(id);
            }
            SessionMsg::Restore { snapshot, reply } => {
                let out = match snapshots.get(&snapshot) {
                    Some(snap) => {
                        session.restore(snap);
                        Ok(())
                    }
                    None => Err(ServeError::UnknownSnapshot(snapshot)),
                };
                publish(&session, &read);
                let _ = reply.send(out);
            }
            SessionMsg::Stats { reply } => {
                let _ = reply.send(session.stats());
            }
            SessionMsg::Close => break,
        }
    }
}

/// Republish the session's read snapshot if anything observable moved.
/// The [`Instance::version`] comparison is the copy-on-read filter: a
/// duplicate-only batch leaves the version alone, so readers keep sharing
/// the old `Arc` and no clone happens.
fn publish(session: &ChaseSession, read: &ReadState) {
    let stats = session.stats();
    let version = session.instance().version();
    let poisoned = session.poisoned().cloned();
    let current = read.published.read().unwrap();
    let stale = current.version != version
        || current.quiescent != stats.quiescent
        || current.poisoned != poisoned;
    if !stale {
        return;
    }
    let fresh_instance = if current.version != version {
        Arc::new(session.instance().clone())
    } else {
        Arc::clone(&current.instance)
    };
    drop(current);
    *read.published.write().unwrap() = Published {
        instance: fresh_instance,
        version,
        quiescent: stats.quiescent,
        poisoned,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::Instance;

    fn atoms(text: &str) -> Vec<Atom> {
        Instance::parse(text).unwrap().atoms()
    }

    fn sigma(text: &str) -> ConstraintSet {
        ConstraintSet::parse(text).unwrap()
    }

    #[test]
    fn open_route_apply_query_close() {
        let conductor = Conductor::new(ConductorConfig::default());
        let id = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let h = conductor.route(id).unwrap();
        let out = h.apply(atoms("e(a,b).")).unwrap();
        assert_eq!(out.total_facts, 2);
        let q = ConjunctiveQuery::parse("q(X) <- e(X,b)").unwrap();
        let ans = h.query(&q, QueryOpts::default()).unwrap();
        assert_eq!(ans.len(), 1);
        let stats = h.stats().unwrap();
        assert_eq!(stats.epoch, 1);
        assert!(stats.quiescent);
        conductor.close(id).unwrap();
        assert_eq!(
            conductor.route(id).unwrap_err(),
            ServeError::UnknownSession(id)
        );
        // The handle outlives the slot but its actor is gone.
        assert_eq!(h.stats().unwrap_err(), ServeError::SessionGone);
    }

    #[test]
    fn capacity_is_enforced_and_freed_by_close() {
        let conductor = Conductor::new(ConductorConfig {
            max_sessions: 2,
            ..ConductorConfig::default()
        });
        let a = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let _b = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        assert_eq!(
            conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap_err(),
            ServeError::Capacity { max_sessions: 2 }
        );
        conductor.close(a).unwrap();
        conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
    }

    #[test]
    fn step_budget_clamps_admitted_sessions() {
        let conductor = Conductor::new(ConductorConfig {
            step_budget: Some(3),
            ..ConductorConfig::default()
        });
        // Unbounded growth: each fact spawns a longer chain.
        let id = conductor.open(sigma("e(X,Y) -> e(Y,Z)")).unwrap();
        let h = conductor.route(id).unwrap();
        let out = h.apply(atoms("e(a,b).")).unwrap();
        assert!(matches!(out.reason, StopReason::StepLimit(_)));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let conductor = Conductor::new(ConductorConfig::default());
        let id = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let h = conductor.route(id).unwrap();
        h.apply(atoms("e(a,b).")).unwrap();
        let snap = h.snapshot().unwrap();
        h.apply(atoms("e(c,d).")).unwrap();
        assert_eq!(h.stats().unwrap().total_facts, 4);
        h.restore(snap).unwrap();
        assert_eq!(h.stats().unwrap().total_facts, 2);
        // Restored state is published: reads see the rewound instance.
        let q = ConjunctiveQuery::parse("q(X) <- e(c,X)").unwrap();
        assert!(h.query(&q, QueryOpts::default()).unwrap().is_empty());
        assert_eq!(h.restore(99).unwrap_err(), ServeError::UnknownSnapshot(99));
    }

    #[test]
    fn queries_during_apply_see_the_pre_batch_snapshot() {
        let conductor = Conductor::new(ConductorConfig {
            step_budget: None,
            ..ConductorConfig::default()
        });
        let id = conductor.open(sigma("e(X,Y), e(Y,Z) -> e(X,Z)")).unwrap();
        let h = conductor.route(id).unwrap();
        // Seed a small chain, then queue a batch whose transitive closure
        // takes real work.
        h.apply(atoms("e(a,b).")).unwrap();
        let mut big = String::new();
        for i in 0..60 {
            big.push_str(&format!("p{i}(x). e(n{i},n{}).", i + 1));
        }
        let pending = h.apply_async(atoms(&big));
        let q = ConjunctiveQuery::parse("q(X) <- e(a,X)").unwrap();
        // Issued while the apply may still be chasing: must answer from a
        // coherent snapshot, i.e. either exactly pre-batch or post-batch.
        let mid = h.query(&q, QueryOpts::default()).unwrap();
        assert_eq!(mid.len(), 1); // `a` reaches only `b` in both states
        pending.recv().unwrap().unwrap();
        let after = h.query(&q, QueryOpts::default()).unwrap();
        assert_eq!(after.len(), 1);
        assert!(h.stats().unwrap().total_facts > 120);
    }

    #[test]
    fn poisoned_sessions_fail_reads_on_the_fast_path() {
        let conductor = Conductor::new(ConductorConfig::default());
        let id = conductor.open(sigma("p(X), p(Y) -> X = Y")).unwrap();
        let h = conductor.route(id).unwrap();
        let err = h.apply(atoms("p(a). p(b).")).unwrap();
        assert_eq!(err.reason, StopReason::Failed);
        let q = ConjunctiveQuery::parse("q(X) <- p(X)").unwrap();
        assert_eq!(
            h.query(&q, QueryOpts::default()).unwrap_err(),
            ServeError::Poisoned(StopReason::Failed)
        );
    }

    #[test]
    fn duplicate_batches_do_not_republish() {
        let conductor = Conductor::new(ConductorConfig::default());
        let id = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let h = conductor.route(id).unwrap();
        h.apply(atoms("e(a,b).")).unwrap();
        let before = Arc::as_ptr(&h.read.published.read().unwrap().instance);
        h.apply(atoms("e(a,b).")).unwrap();
        let after = Arc::as_ptr(&h.read.published.read().unwrap().instance);
        assert_eq!(before, after, "duplicate-only batch must not re-clone");
    }
}
