//! The multi-tenant session runtime: one **actor thread per session**,
//! fronted by a [`Conductor`] that creates, routes and admits sessions.
//!
//! ## Actors and mailboxes
//!
//! Every open session owns a dedicated thread holding the [`ChaseSession`]
//! — warm trigger pool, plan cache, rewriting cache and all. The thread
//! drains a typed mailbox (`SessionMsg`: `Apply`/`Query`/`Snapshot`/
//! `Restore`/`Stats`/`Close`), so all mutation of a session is serialized
//! by construction and the engine state needs no locks at all. Callers
//! hold a [`SessionHandle`] — a cheap clone of the mailbox sender plus the
//! session's published read surface — and get replies over per-request
//! channels.
//!
//! ## Concurrent reads during an in-flight apply
//!
//! After every mutating message the actor *publishes* an
//! `Arc<`[`Instance`]`>` snapshot of the chased instance — but only when
//! [`Instance::version`] actually moved, so duplicate-only batches never
//! pay the copy (**copy-on-read**: readers share the published `Arc`,
//! writers replace it). [`SessionHandle::query`] evaluates on the *calling*
//! thread against that published snapshot whenever it is quiescent, so a
//! certain-answer read admitted while a large apply is chasing inside the
//! actor returns immediately with exactly the pre-batch state — it never
//! queues behind the write. Publication happens *before* the apply's reply
//! is released, so a client that saw its apply acknowledged is guaranteed
//! to read its own writes.
//!
//! ## Admission
//!
//! The conductor enforces a **global session cap** (admission fails with
//! [`ServeError::Capacity`]) and clamps every admitted session's chase
//! budget to the configured **per-session step budget**, so one runaway
//! tenant can neither starve the machine of threads nor chase unboundedly.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread;
use std::time::Instant;

use chase_core::{Atom, ConjunctiveQuery, ConstraintSet, Instance, Term};
use chase_engine::{ChaseMode, StopReason};
use chase_obs::{
    Counter, EventKind, Gauge, Histogram, MetricsRegistry, Recorder, RegistrySnapshot,
};

use crate::session::{
    choose_rewriting, ChaseOutcome, ChaseSession, QueryOpts, ServeError, SessionConfig,
    SessionSnapshot, SessionStats,
};
use crate::wal::{self, DurabilityConfig};

/// Admission policy for a [`Conductor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConductorConfig {
    /// Global cap on concurrently open sessions (each owns one thread).
    pub max_sessions: usize,
    /// Per-session chase step budget. Every admitted session's
    /// `chase.max_steps` is clamped to at most this, whatever the session
    /// template asks for.
    pub step_budget: Option<usize>,
    /// Session template: configuration every admitted session starts from.
    pub session: SessionConfig,
    /// Make sessions durable under this root: each admitted session logs
    /// to `<root>/session-<id>` and [`Conductor::new`] **warm-restarts**
    /// every session directory it finds there (same ids, snapshot loaded,
    /// WAL-since-snapshot replayed). `None` (the default) keeps every
    /// session in memory.
    pub durable_root: Option<PathBuf>,
    /// Fsync policy and snapshot-compaction thresholds for durable
    /// sessions (ignored without [`ConductorConfig::durable_root`]).
    pub durability: DurabilityConfig,
}

impl Default for ConductorConfig {
    fn default() -> ConductorConfig {
        ConductorConfig {
            max_sessions: 64,
            step_budget: Some(100_000),
            session: SessionConfig::default(),
            durable_root: None,
            durability: DurabilityConfig::default(),
        }
    }
}

/// Series names in the conductor-wide registry (see [`Conductor::metrics`]).
const M_SESSIONS_OPEN: &str = "chase_sessions_open";
const M_SESSIONS_PEAK: &str = "chase_sessions_peak";
const M_SESSIONS_OPENED: &str = "chase_sessions_opened_total";
const M_SESSIONS_REJECTED: &str = "chase_sessions_rejected_total";
const M_APPLY_NS: &str = "chase_apply_ns";
const M_QUERY_NS: &str = "chase_query_ns";
const M_MAILBOX_DEPTH: &str = "chase_mailbox_depth";
const M_PUBLISH: &str = "chase_snapshot_publish_total";
const M_PUBLISH_SKIPPED: &str = "chase_snapshot_publish_skipped_total";
const M_PHASE_NS: &str = "chase_phase_ns";
const M_EVENTS_DROPPED: &str = "chase_events_dropped_total";
const M_SESSIONS_REOPENED: &str = "chase_sessions_reopened_total";
const M_REOPEN_FAILED: &str = "chase_sessions_reopen_failed_total";

/// Handles into the conductor-wide [`MetricsRegistry`] plus the session's
/// engine recorder, shared by the session's actor and every
/// [`SessionHandle`] clone. All fields are cheap-to-clone views onto
/// conductor-owned series — per-session work lands in the server-wide
/// aggregate without extra locking.
#[derive(Clone)]
struct HandleMetrics {
    /// Blocking-apply round-trip latency (send → chased → acked).
    apply_ns: Arc<Histogram>,
    /// Query latency, fast path and actor path alike.
    query_ns: Arc<Histogram>,
    /// Messages currently queued across every session mailbox.
    mailbox_depth: Gauge,
    /// Snapshot publications that actually replaced the published state.
    publishes: Counter,
    /// Publications filtered out by the version compare (the other half of
    /// the republish ratio).
    publish_skipped: Counter,
    /// The session's engine recorder (phase histograms + event ring),
    /// readable without touching the actor thread.
    recorder: Recorder,
}

/// The session's read surface, shared between its actor (publisher) and
/// every handle (readers).
struct ReadState {
    /// Conductor-wide metric handles this session reports into.
    metrics: HandleMetrics,
    /// The latest published snapshot.
    published: RwLock<Published>,
    /// Rewriting decisions for the concurrent read path, keyed by query
    /// text — the handle-side mirror of the session's own cache, computed
    /// by the same [`choose_rewriting`].
    rewrites: Mutex<HashMap<String, Option<ConjunctiveQuery>>>,
    /// The session's constraint set (for rewriting on the read path).
    set: ConstraintSet,
    /// The session's configuration (for rewriting policy).
    cfg: SessionConfig,
}

/// One published state: an immutable chased instance plus the flags a
/// reader needs to decide whether it may answer from it.
#[derive(Clone)]
struct Published {
    /// The chased instance readers evaluate against.
    instance: Arc<Instance>,
    /// [`Instance::version`] at publication — the republish filter.
    version: u64,
    /// Was the session quiescent (fully chased, unpoisoned) when this was
    /// published? Only quiescent snapshots may answer queries locally.
    quiescent: bool,
    /// Terminal stop, if the session is poisoned.
    poisoned: Option<StopReason>,
}

/// The typed mailbox protocol an actor drains. One variant per operation;
/// every variant that answers carries its own reply sender.
enum SessionMsg {
    /// Apply an update batch and continue the chase warm.
    Apply {
        batch: Vec<Atom>,
        reply: Sender<Result<ChaseOutcome, ServeError>>,
    },
    /// Answer a query on the actor thread (the quiesce-first slow path;
    /// quiescent reads bypass the mailbox entirely).
    Query {
        q: ConjunctiveQuery,
        opts: QueryOpts,
        reply: Sender<Result<Vec<Vec<Term>>, ServeError>>,
    },
    /// Take a snapshot into the actor-side store; replies with its id.
    Snapshot { reply: Sender<u64> },
    /// Rewind to a stored snapshot.
    Restore {
        snapshot: u64,
        reply: Sender<Result<(), ServeError>>,
    },
    /// Read the session's counters.
    Stats { reply: Sender<SessionStats> },
    /// Force a durability point (snapshot + WAL compaction); replies with
    /// the epoch the on-disk state now covers.
    Persist {
        reply: Sender<Result<u64, ServeError>>,
    },
    /// Drop the session: the actor breaks its loop and the thread exits.
    Close,
}

/// A clonable address of one session: the mailbox sender plus the
/// published read surface. All methods are `&self`; clones address the
/// same session.
#[derive(Clone)]
pub struct SessionHandle {
    tx: Sender<SessionMsg>,
    read: Arc<ReadState>,
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle").finish_non_exhaustive()
    }
}

impl SessionHandle {
    /// Send into the mailbox, keeping the conductor-wide depth gauge in
    /// step. On failure (actor gone) nothing was queued, so the increment
    /// is rolled back.
    fn post(&self, msg: SessionMsg) -> Result<(), mpsc::SendError<SessionMsg>> {
        self.read.metrics.mailbox_depth.add(1);
        let out = self.tx.send(msg);
        if out.is_err() {
            self.read.metrics.mailbox_depth.add(-1);
        }
        out
    }

    /// Apply an update batch, blocking until the warm re-chase finishes.
    pub fn apply(&self, batch: Vec<Atom>) -> Result<ChaseOutcome, ServeError> {
        let t0 = Instant::now();
        let out = self
            .apply_async(batch)
            .recv()
            .map_err(|_| ServeError::SessionGone)?;
        self.read.metrics.apply_ns.record_duration(t0.elapsed());
        out
    }

    /// Queue an update batch and return immediately; the receiver yields
    /// the outcome when the actor finishes chasing it. Queries issued in
    /// the meantime are answered from the pre-batch snapshot.
    pub fn apply_async(&self, batch: Vec<Atom>) -> Receiver<Result<ChaseOutcome, ServeError>> {
        let (reply, rx) = mpsc::channel();
        if self
            .post(SessionMsg::Apply {
                batch,
                reply: reply.clone(),
            })
            .is_err()
        {
            // Actor gone: make the receiver yield the error instead of
            // hanging up empty.
            let _ = reply.send(Err(ServeError::SessionGone));
        }
        rx
    }

    /// Answer a conjunctive query. When the published snapshot is
    /// quiescent this evaluates **on the calling thread** against that
    /// snapshot — concurrent with any in-flight apply, which it does not
    /// wait for. Otherwise (mid-budget stop pending, or nothing published
    /// yet after a restore) it falls back to the actor, which quiesces
    /// first, exactly like [`ChaseSession::query`].
    pub fn query(
        &self,
        q: &ConjunctiveQuery,
        opts: QueryOpts,
    ) -> Result<Vec<Vec<Term>>, ServeError> {
        let t0 = Instant::now();
        let out = self.query_inner(q, opts);
        self.read.metrics.query_ns.record_duration(t0.elapsed());
        out
    }

    /// [`SessionHandle::query`] minus the latency accounting, so both the
    /// fast path and the actor fallback land in one histogram.
    fn query_inner(
        &self,
        q: &ConjunctiveQuery,
        opts: QueryOpts,
    ) -> Result<Vec<Vec<Term>>, ServeError> {
        let published = self.read.published.read().unwrap().clone();
        if let Some(r) = published.poisoned {
            return Err(ServeError::Poisoned(r));
        }
        if published.quiescent {
            let target = if opts.sqo { self.rewritten(q) } else { None };
            let target = target.as_ref().unwrap_or(q);
            return Ok(if opts.all {
                target.evaluate(&published.instance)
            } else {
                target.evaluate_certain(&published.instance)
            });
        }
        let (reply, rx) = mpsc::channel();
        self.post(SessionMsg::Query {
            q: q.clone(),
            opts,
            reply,
        })
        .map_err(|_| ServeError::SessionGone)?;
        rx.recv().map_err(|_| ServeError::SessionGone)?
    }

    /// The read path's cached rewriting decision for `q` (mirrors the
    /// session-side cache; both call [`choose_rewriting`]).
    fn rewritten(&self, q: &ConjunctiveQuery) -> Option<ConjunctiveQuery> {
        if !self.read.cfg.use_sqo {
            return None;
        }
        let key = q.to_string();
        let mut cache = self.read.rewrites.lock().unwrap();
        if let Some(cached) = cache.get(&key) {
            return cached.clone();
        }
        let choice = choose_rewriting(q, &self.read.set, &self.read.cfg);
        cache.insert(key, choice.clone());
        choice
    }

    /// Take a server-side snapshot; returns its id for [`SessionHandle::restore`].
    pub fn snapshot(&self) -> Result<u64, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.post(SessionMsg::Snapshot { reply })
            .map_err(|_| ServeError::SessionGone)?;
        rx.recv().map_err(|_| ServeError::SessionGone)
    }

    /// Rewind the session to a snapshot taken earlier on it.
    pub fn restore(&self, snapshot: u64) -> Result<(), ServeError> {
        let (reply, rx) = mpsc::channel();
        self.post(SessionMsg::Restore { snapshot, reply })
            .map_err(|_| ServeError::SessionGone)?;
        rx.recv().map_err(|_| ServeError::SessionGone)?
    }

    /// The published instance rendered as fact text (the protocol's
    /// `Dump`). Served from the read snapshot like [`SessionHandle::query`],
    /// so it never waits behind an in-flight apply.
    pub fn dump(&self) -> Result<String, ServeError> {
        let published = self.read.published.read().unwrap().clone();
        if let Some(r) = published.poisoned {
            return Err(ServeError::Poisoned(r));
        }
        Ok(published.instance.to_string())
    }

    /// One coherent reading of the session's counters.
    pub fn stats(&self) -> Result<SessionStats, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.post(SessionMsg::Stats { reply })
            .map_err(|_| ServeError::SessionGone)?;
        rx.recv().map_err(|_| ServeError::SessionGone)
    }

    /// Force a durability point now ([`ChaseSession::persist`]): snapshot
    /// the session's state and compact its write-ahead log. Returns the
    /// epoch the on-disk state covers; [`ServeError::Durability`] on an
    /// in-memory session.
    pub fn persist(&self) -> Result<u64, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.post(SessionMsg::Persist { reply })
            .map_err(|_| ServeError::SessionGone)?;
        rx.recv().map_err(|_| ServeError::SessionGone)?
    }
}

/// One live session as the conductor tracks it.
struct Slot {
    handle: SessionHandle,
    thread: thread::JoinHandle<()>,
}

/// Creates, routes and admits sessions: the server's front object.
///
/// `open` spawns a session actor (subject to the global cap and the
/// per-session step budget), `route` resolves a session id to a
/// [`SessionHandle`], `close` tears the actor down and frees its slot.
/// All methods take `&self`; the conductor is shared behind an `Arc`
/// across connection threads.
pub struct Conductor {
    cfg: ConductorConfig,
    sessions: Mutex<HashMap<u64, Slot>>,
    next_id: AtomicU64,
    /// The server-wide aggregate registry: session lifecycle gauges and
    /// counters, apply/query latency histograms, publish counters. Every
    /// session reports into these shared series via [`HandleMetrics`].
    metrics: MetricsRegistry,
}

/// Conductor-wide session lifecycle counters, served without touching any
/// actor thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetStats {
    /// Sessions open right now.
    pub open: usize,
    /// High-water mark of concurrently open sessions.
    pub peak: u64,
    /// Sessions ever admitted.
    pub opened_total: u64,
    /// Admissions refused by the capacity cap.
    pub rejected_total: u64,
}

impl Conductor {
    /// A conductor with the given admission policy.
    ///
    /// With [`ConductorConfig::durable_root`] set, construction is a **warm
    /// restart**: every `session-<id>` directory under the root is reopened
    /// through [`ChaseSession::open_with`] — newest snapshot loaded, the
    /// write-ahead log since it replayed — and served again under its old
    /// id; id allocation continues past the highest reopened id. A
    /// directory that fails to reopen is left untouched on disk and
    /// counted in `chase_sessions_reopen_failed_total` rather than taking
    /// the whole server down.
    pub fn new(cfg: ConductorConfig) -> Conductor {
        let conductor = Conductor {
            cfg,
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            metrics: MetricsRegistry::new(),
        };
        conductor.reopen_durable_sessions();
        conductor
    }

    /// Scan the durable root and bring every reopenable session back up.
    fn reopen_durable_sessions(&self) {
        let Some(root) = &self.cfg.durable_root else {
            return;
        };
        let Ok(entries) = std::fs::read_dir(root) else {
            return; // nothing persisted yet; `open` creates the root lazily
        };
        let mut found: Vec<(u64, PathBuf)> = entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let id: u64 = name.strip_prefix("session-")?.parse().ok()?;
                let path = e.path();
                wal::is_session_dir(&path).then_some((id, path))
            })
            .collect();
        found.sort();
        let mut max_id = 0;
        let mut sessions = self.sessions.lock().unwrap();
        for (id, dir) in found {
            max_id = max_id.max(id);
            if sessions.len() >= self.cfg.max_sessions {
                self.metrics.counter(M_REOPEN_FAILED).inc();
                continue;
            }
            match ChaseSession::open_with(&dir, self.cfg.durability) {
                Ok(session) => {
                    let sigma = session.constraints().clone();
                    let cfg = session.config().clone();
                    sessions.insert(id, self.spawn_slot(session, sigma, cfg));
                    self.metrics.counter(M_SESSIONS_OPENED).inc();
                    self.metrics.counter(M_SESSIONS_REOPENED).inc();
                }
                Err(_) => {
                    self.metrics.counter(M_REOPEN_FAILED).inc();
                }
            }
        }
        let open = sessions.len() as i64;
        self.metrics.gauge(M_SESSIONS_OPEN).set(open);
        self.metrics.gauge(M_SESSIONS_PEAK).raise_to(open);
        drop(sessions);
        self.next_id.store(max_id + 1, Ordering::Relaxed);
    }

    /// The admission policy.
    pub fn config(&self) -> &ConductorConfig {
        &self.cfg
    }

    /// Open sessions right now.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// Admit a new session over `sigma`, returning its id.
    ///
    /// # Errors
    ///
    /// [`ServeError::Capacity`] when [`ConductorConfig::max_sessions`]
    /// sessions are already open.
    pub fn open(&self, sigma: ConstraintSet) -> Result<u64, ServeError> {
        let mut sessions = self.sessions.lock().unwrap();
        if sessions.len() >= self.cfg.max_sessions {
            self.metrics.counter(M_SESSIONS_REJECTED).inc();
            return Err(ServeError::Capacity {
                max_sessions: self.cfg.max_sessions,
            });
        }
        let mut cfg = self.cfg.session.clone();
        if let Some(budget) = self.cfg.step_budget {
            cfg.chase.max_steps = Some(match cfg.chase.max_steps {
                Some(n) => n.min(budget),
                None => budget,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut builder = ChaseSession::builder(sigma.clone()).config(cfg.clone());
        if let Some(root) = &self.cfg.durable_root {
            builder = builder
                .durable(root.join(format!("session-{id}")))
                .durability(self.cfg.durability);
        }
        let session = builder.try_build()?;
        sessions.insert(id, self.spawn_slot(session, sigma, cfg));
        // Still under the sessions lock, so open/peak can never observe a
        // torn admission.
        self.metrics.counter(M_SESSIONS_OPENED).inc();
        let open = sessions.len() as i64;
        self.metrics.gauge(M_SESSIONS_OPEN).set(open);
        self.metrics.gauge(M_SESSIONS_PEAK).raise_to(open);
        Ok(id)
    }

    /// Wire a built (or reopened) session into its actor thread and read
    /// surface — the shared tail of [`Conductor::open`] and warm restart.
    fn spawn_slot(&self, session: ChaseSession, sigma: ConstraintSet, cfg: SessionConfig) -> Slot {
        // An empty unpoisoned instance is vacuously quiescent even before
        // the trigger pool exists; a reopened non-quiescent state (snapshot
        // without replay) must route queries through the actor's quiesce.
        let quiescent = session.stats().quiescent
            || (session.instance().is_empty() && session.poisoned().is_none());
        let read = Arc::new(ReadState {
            metrics: HandleMetrics {
                apply_ns: self.metrics.histogram(M_APPLY_NS),
                query_ns: self.metrics.histogram(M_QUERY_NS),
                mailbox_depth: self.metrics.gauge(M_MAILBOX_DEPTH),
                publishes: self.metrics.counter(M_PUBLISH),
                publish_skipped: self.metrics.counter(M_PUBLISH_SKIPPED),
                recorder: session.recorder().clone(),
            },
            published: RwLock::new(Published {
                instance: Arc::new(session.instance().clone()),
                version: session.instance().version(),
                quiescent,
                poisoned: session.poisoned().cloned(),
            }),
            rewrites: Mutex::new(HashMap::new()),
            set: sigma,
            cfg,
        });
        let (tx, rx) = mpsc::channel();
        let actor_read = Arc::clone(&read);
        let thread = thread::spawn(move || actor(session, actor_read, rx));
        Slot {
            handle: SessionHandle { tx, read },
            thread,
        }
    }

    /// Resolve a session id to a handle.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if no such session is open.
    pub fn route(&self, id: u64) -> Result<SessionHandle, ServeError> {
        self.sessions
            .lock()
            .unwrap()
            .get(&id)
            .map(|s| s.handle.clone())
            .ok_or(ServeError::UnknownSession(id))
    }

    /// Close a session: stop its actor, join its thread, free its slot.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if no such session is open.
    pub fn close(&self, id: u64) -> Result<(), ServeError> {
        let slot = {
            let mut sessions = self.sessions.lock().unwrap();
            let slot = sessions.remove(&id).ok_or(ServeError::UnknownSession(id))?;
            self.metrics
                .gauge(M_SESSIONS_OPEN)
                .set(sessions.len() as i64);
            slot
        };
        let _ = slot.handle.post(SessionMsg::Close);
        let _ = slot.thread.join();
        Ok(())
    }

    /// Close every open session (used on server shutdown).
    pub fn shutdown(&self) {
        let slots: Vec<Slot> = {
            let mut sessions = self.sessions.lock().unwrap();
            let slots = sessions.drain().map(|(_, s)| s).collect();
            self.metrics.gauge(M_SESSIONS_OPEN).set(0);
            slots
        };
        for slot in slots {
            let _ = slot.handle.post(SessionMsg::Close);
            let _ = slot.thread.join();
        }
    }

    /// Fleet-level lifecycle counters, read straight off the aggregate
    /// registry — no actor mailbox is touched.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            open: self.session_count(),
            peak: self.metrics.gauge(M_SESSIONS_PEAK).get().max(0) as u64,
            opened_total: self.metrics.counter(M_SESSIONS_OPENED).get(),
            rejected_total: self.metrics.counter(M_SESSIONS_REJECTED).get(),
        }
    }

    /// The server-wide aggregate registry (session gauges, apply/query
    /// latency histograms, publish counters).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// One server-wide metrics snapshot: the aggregate registry plus every
    /// *open* session's engine phase histograms (merged into one
    /// `chase_phase_ns{phase="…"}` family) and event-ring drop counts.
    ///
    /// Reads only lock-free recorder sinks and the session map — never an
    /// actor mailbox — so a metrics scrape cannot block behind a tenant's
    /// in-flight apply. Sessions closed before the scrape no longer
    /// contribute their phase timings.
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        let recorders: Vec<Recorder> = self
            .sessions
            .lock()
            .unwrap()
            .values()
            .map(|s| s.handle.read.metrics.recorder.clone())
            .collect();
        let mut snap = self.metrics.snapshot();
        for rec in recorders {
            let mut one = RegistrySnapshot::new();
            rec.export_phases(M_PHASE_NS, &mut one);
            one.set_counter(M_EVENTS_DROPPED, rec.events_dropped());
            snap.merge(&one);
        }
        snap
    }

    /// [`Conductor::metrics_snapshot`] rendered as Prometheus-style text
    /// exposition (the payload behind the protocol's `Metrics` request).
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().render()
    }
}

impl Drop for Conductor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The session actor: drains the mailbox, serializing all mutation of the
/// owned [`ChaseSession`], and republishes the read snapshot after every
/// message that may have moved the instance.
fn actor(mut session: ChaseSession, read: Arc<ReadState>, rx: Receiver<SessionMsg>) {
    let mut snapshots: HashMap<u64, SessionSnapshot> = HashMap::new();
    let mut next_snapshot: u64 = 1;
    for msg in &rx {
        read.metrics.mailbox_depth.add(-1);
        match msg {
            SessionMsg::Apply { batch, reply } => {
                let out = session.apply(batch);
                // Publish before replying: once the client sees the ack it
                // is guaranteed to read its own writes from the snapshot.
                publish(&session, &read);
                let _ = reply.send(out);
            }
            SessionMsg::Query { q, opts, reply } => {
                let out = session.query((&q, opts));
                // The query may have quiesced a budget-stopped chase.
                publish(&session, &read);
                let _ = reply.send(out);
            }
            SessionMsg::Snapshot { reply } => {
                let id = next_snapshot;
                next_snapshot += 1;
                snapshots.insert(id, session.snapshot());
                let _ = reply.send(id);
            }
            SessionMsg::Restore { snapshot, reply } => {
                let out = match snapshots.get(&snapshot) {
                    // Guard what `ChaseSession::restore` would panic on — a
                    // panicking actor takes the whole session down, a reply
                    // only fails the one request.
                    Some(_)
                        if session.is_durable()
                            && session.config().chase.mode == ChaseMode::Oblivious =>
                    {
                        Err(ServeError::Durability(
                            "restore on a durable oblivious session is unsupported \
                             (its log cannot be re-anchored)"
                                .to_string(),
                        ))
                    }
                    Some(snap) => {
                        session.restore(snap);
                        Ok(())
                    }
                    None => Err(ServeError::UnknownSnapshot(snapshot)),
                };
                publish(&session, &read);
                let _ = reply.send(out);
            }
            SessionMsg::Stats { reply } => {
                let _ = reply.send(session.stats());
            }
            SessionMsg::Persist { reply } => {
                let _ = reply.send(session.persist());
            }
            SessionMsg::Close => break,
        }
    }
    // Anything still queued behind the Close is dropped with the receiver;
    // return its contribution to the depth gauge.
    for _ in rx.try_iter() {
        read.metrics.mailbox_depth.add(-1);
    }
}

/// Republish the session's read snapshot if anything observable moved.
/// The [`Instance::version`] comparison is the copy-on-read filter: a
/// duplicate-only batch leaves the version alone, so readers keep sharing
/// the old `Arc` and no clone happens.
fn publish(session: &ChaseSession, read: &ReadState) {
    let stats = session.stats();
    let version = session.instance().version();
    let poisoned = session.poisoned().cloned();
    let current = read.published.read().unwrap();
    let stale = current.version != version
        || current.quiescent != stats.quiescent
        || current.poisoned != poisoned;
    if !stale {
        read.metrics.publish_skipped.inc();
        return;
    }
    let fresh_instance = if current.version != version {
        Arc::new(session.instance().clone())
    } else {
        Arc::clone(&current.instance)
    };
    drop(current);
    *read.published.write().unwrap() = Published {
        instance: fresh_instance,
        version,
        quiescent: stats.quiescent,
        poisoned,
    };
    read.metrics.publishes.inc();
    read.metrics.recorder.event(
        EventKind::SnapshotPublish,
        version,
        u64::from(stats.quiescent),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::Instance;

    fn atoms(text: &str) -> Vec<Atom> {
        Instance::parse(text).unwrap().atoms()
    }

    fn sigma(text: &str) -> ConstraintSet {
        ConstraintSet::parse(text).unwrap()
    }

    #[test]
    fn open_route_apply_query_close() {
        let conductor = Conductor::new(ConductorConfig::default());
        let id = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let h = conductor.route(id).unwrap();
        let out = h.apply(atoms("e(a,b).")).unwrap();
        assert_eq!(out.total_facts, 2);
        let q = ConjunctiveQuery::parse("q(X) <- e(X,b)").unwrap();
        let ans = h.query(&q, QueryOpts::default()).unwrap();
        assert_eq!(ans.len(), 1);
        let stats = h.stats().unwrap();
        assert_eq!(stats.epoch, 1);
        assert!(stats.quiescent);
        conductor.close(id).unwrap();
        assert_eq!(
            conductor.route(id).unwrap_err(),
            ServeError::UnknownSession(id)
        );
        // The handle outlives the slot but its actor is gone.
        assert_eq!(h.stats().unwrap_err(), ServeError::SessionGone);
    }

    #[test]
    fn capacity_is_enforced_and_freed_by_close() {
        let conductor = Conductor::new(ConductorConfig {
            max_sessions: 2,
            ..ConductorConfig::default()
        });
        let a = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let _b = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        assert_eq!(
            conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap_err(),
            ServeError::Capacity { max_sessions: 2 }
        );
        conductor.close(a).unwrap();
        conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
    }

    #[test]
    fn step_budget_clamps_admitted_sessions() {
        let conductor = Conductor::new(ConductorConfig {
            step_budget: Some(3),
            ..ConductorConfig::default()
        });
        // Unbounded growth: each fact spawns a longer chain.
        let id = conductor.open(sigma("e(X,Y) -> e(Y,Z)")).unwrap();
        let h = conductor.route(id).unwrap();
        let out = h.apply(atoms("e(a,b).")).unwrap();
        assert!(matches!(out.reason, StopReason::StepLimit(_)));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let conductor = Conductor::new(ConductorConfig::default());
        let id = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let h = conductor.route(id).unwrap();
        h.apply(atoms("e(a,b).")).unwrap();
        let snap = h.snapshot().unwrap();
        h.apply(atoms("e(c,d).")).unwrap();
        assert_eq!(h.stats().unwrap().total_facts, 4);
        h.restore(snap).unwrap();
        assert_eq!(h.stats().unwrap().total_facts, 2);
        // Restored state is published: reads see the rewound instance.
        let q = ConjunctiveQuery::parse("q(X) <- e(c,X)").unwrap();
        assert!(h.query(&q, QueryOpts::default()).unwrap().is_empty());
        assert_eq!(h.restore(99).unwrap_err(), ServeError::UnknownSnapshot(99));
    }

    #[test]
    fn queries_during_apply_see_the_pre_batch_snapshot() {
        let conductor = Conductor::new(ConductorConfig {
            step_budget: None,
            ..ConductorConfig::default()
        });
        let id = conductor.open(sigma("e(X,Y), e(Y,Z) -> e(X,Z)")).unwrap();
        let h = conductor.route(id).unwrap();
        // Seed a small chain, then queue a batch whose transitive closure
        // takes real work.
        h.apply(atoms("e(a,b).")).unwrap();
        let mut big = String::new();
        for i in 0..60 {
            big.push_str(&format!("p{i}(x). e(n{i},n{}).", i + 1));
        }
        let pending = h.apply_async(atoms(&big));
        let q = ConjunctiveQuery::parse("q(X) <- e(a,X)").unwrap();
        // Issued while the apply may still be chasing: must answer from a
        // coherent snapshot, i.e. either exactly pre-batch or post-batch.
        let mid = h.query(&q, QueryOpts::default()).unwrap();
        assert_eq!(mid.len(), 1); // `a` reaches only `b` in both states
        pending.recv().unwrap().unwrap();
        let after = h.query(&q, QueryOpts::default()).unwrap();
        assert_eq!(after.len(), 1);
        assert!(h.stats().unwrap().total_facts > 120);
    }

    #[test]
    fn poisoned_sessions_fail_reads_on_the_fast_path() {
        let conductor = Conductor::new(ConductorConfig::default());
        let id = conductor.open(sigma("p(X), p(Y) -> X = Y")).unwrap();
        let h = conductor.route(id).unwrap();
        let err = h.apply(atoms("p(a). p(b).")).unwrap();
        assert_eq!(err.reason, StopReason::Failed);
        let q = ConjunctiveQuery::parse("q(X) <- p(X)").unwrap();
        assert_eq!(
            h.query(&q, QueryOpts::default()).unwrap_err(),
            ServeError::Poisoned(StopReason::Failed)
        );
    }

    #[test]
    fn fleet_stats_track_admission_lifecycle() {
        let conductor = Conductor::new(ConductorConfig {
            max_sessions: 2,
            ..ConductorConfig::default()
        });
        let a = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let b = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        assert!(conductor.open(sigma("e(X,Y) -> e(Y,X)")).is_err());
        conductor.close(a).unwrap();
        let s = conductor.stats();
        assert_eq!(s.open, 1);
        assert_eq!(s.peak, 2);
        assert_eq!(s.opened_total, 2);
        assert_eq!(s.rejected_total, 1);
        conductor.close(b).unwrap();
        assert_eq!(conductor.stats().open, 0);
        assert_eq!(conductor.stats().peak, 2);
    }

    #[test]
    fn metrics_snapshot_merges_latency_and_phases() {
        let conductor = Conductor::new(ConductorConfig::default());
        let id = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let h = conductor.route(id).unwrap();
        h.apply(atoms("e(a,b).")).unwrap();
        let q = ConjunctiveQuery::parse("q(X) <- e(X,b)").unwrap();
        h.query(&q, QueryOpts::default()).unwrap();
        h.apply(atoms("e(a,b).")).unwrap(); // duplicate: publish skipped

        let snap = conductor.metrics_snapshot();
        assert_eq!(snap.gauge(M_SESSIONS_OPEN), Some(1));
        assert_eq!(snap.gauge(M_MAILBOX_DEPTH), Some(0));
        let apply = snap.histogram(M_APPLY_NS).unwrap();
        assert_eq!(apply.count(), 2);
        assert!(apply.percentile(0.5) > 0);
        assert_eq!(snap.histogram(M_QUERY_NS).unwrap().count(), 1);
        assert_eq!(snap.counter(M_PUBLISH), Some(1));
        assert!(snap.counter(M_PUBLISH_SKIPPED).unwrap() >= 1);
        // The session's engine phases surface under the labeled family.
        let insert = snap.histogram("chase_phase_ns{phase=\"insert\"}").unwrap();
        assert!(insert.count() > 0);

        let text = conductor.metrics_text();
        assert!(text.contains("chase_sessions_open 1"));
        assert!(text.contains("chase_apply_ns_p99_ns"));
        assert!(text.contains("chase_phase_ns_p50_ns{phase=\"insert\"}"));
    }

    #[test]
    fn duplicate_batches_do_not_republish() {
        let conductor = Conductor::new(ConductorConfig::default());
        let id = conductor.open(sigma("e(X,Y) -> e(Y,X)")).unwrap();
        let h = conductor.route(id).unwrap();
        h.apply(atoms("e(a,b).")).unwrap();
        let before = Arc::as_ptr(&h.read.published.read().unwrap().instance);
        h.apply(atoms("e(a,b).")).unwrap();
        let after = Arc::as_ptr(&h.read.published.read().unwrap().instance);
        assert_eq!(before, after, "duplicate-only batch must not re-clone");
    }
}
